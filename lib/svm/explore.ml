type 'a run = {
  outcomes : 'a Exec.outcome array;
  crashed : int list;
  truncated : bool;
  schedule : string;
}

type 'a result = {
  explored : int;
  counterexample : ('a run * string) option;
  exhausted_budget : bool;
  pruned_states : int;
  pruned_commutes : int;
  pruned_source : int;
}

type 'a pstate = Running of 'a Prog.t | Done of 'a | Crashed

type choice = Step of int | Crash of int

let pp_choice = function
  | Step p -> string_of_int p
  | Crash p -> Printf.sprintf "X%d" p

let schedule_string rev_choices =
  String.concat "." (List.rev_map pp_choice rev_choices)

exception Found

let note metrics name =
  match metrics with
  | None -> ()
  | Some m -> Metrics.incr (Metrics.counter m name)

let note_by metrics name by =
  match metrics with
  | None -> ()
  | Some m -> Metrics.incr ~by (Metrics.counter m name)

let heartbeat on_progress runs =
  match on_progress with None -> () | Some f -> f ~runs

(* ------------------------------------------------------------------ *)
(* Fingerprints: op-result histories and canonical state keys           *)
(* ------------------------------------------------------------------ *)

(* A process's continuation is a closure, so it cannot be compared — but
   programs are deterministic values, so the continuation is a function
   of the sequence of op results the process has received. Histories of
   encoded results therefore stand in for continuations in state keys.
   The encoding is typed per op constructor: two histories can only
   compare equal position-by-position, and equal prefixes imply the next
   op (hence the next result's type) is the same, so the comparison
   never confuses values of different types. *)
type enc =
  | E_unit
  | E_bool of bool
  | E_univ of Univ.t
  | E_univ_opt of Univ.t option
  | E_scan of Univ.t option list

let encode_result : type r. r Op.t -> r -> enc =
 fun op r ->
  match op with
  | Op.Reg_read _ -> E_univ_opt r
  | Op.Reg_write _ -> E_unit
  | Op.Snap_set _ -> E_unit
  | Op.Snap_scan _ -> E_scan (Array.to_list r)
  | Op.Ts _ -> E_bool r
  | Op.Cons_propose _ -> E_univ r
  | Op.Kset_propose _ -> E_univ r
  | Op.Queue_enq _ -> E_unit
  | Op.Queue_deq _ -> E_univ_opt r
  | Op.Cas _ -> E_bool r
  | Op.Oracle_query _ -> E_univ r
  | Op.Yield -> E_unit

(* What a process's next operation touches; the basis of the
   commutation (independence) relation. Oracle queries are keyed by the
   querying pid because the environment tracks per-(family, pid) query
   counts — two different processes querying the same oracle touch
   different cells. *)
type footprint =
  | F_none
  | F_read of Op.fam * Op.key
  | F_write of Op.fam * Op.key
  | F_oracle of Op.fam * int

let footprint (type a) ~pid (prog : a Prog.t) =
  match prog with
  | Prog.Done _ -> F_none
  | Prog.Step (op, _) -> (
      match op with
      | Op.Yield -> F_none
      | Op.Reg_read (f, k) -> F_read (f, k)
      | Op.Snap_scan (f, k) -> F_read (f, k)
      | Op.Oracle_query (f, _) -> F_oracle (f, pid)
      | _ -> (
          match Op.info op with
          | Some i -> F_write (i.Op.fam, i.Op.key)
          | None -> F_none))

let fp_indep a b =
  match (a, b) with
  | F_none, _ | _, F_none -> true
  | F_oracle (f1, p1), F_oracle (f2, p2) -> not (String.equal f1 f2 && p1 = p2)
  | F_oracle _, _ | _, F_oracle _ -> true
  | F_read _, F_read _ -> true
  | (F_read (f1, k1) | F_write (f1, k1)), (F_read (f2, k2) | F_write (f2, k2))
    ->
      not (String.equal f1 f2 && k1 = k2)

(* Which sleeping transitions survive executing [Step t_pid] (whose
   pre-execution footprint is [fp_t])? A sleeping process has not moved
   since it entered the sleep set, so its footprint is read off its
   current state. Crashing commutes with another process's step (same
   final state, same crash order) but never with another crash (the
   [crashed] list records crash order, which properties may observe). *)
let sleep_filter states fp_t t_pid sleep =
  List.filter
    (fun u ->
      match u with
      | Crash q -> q <> t_pid
      | Step q -> (
          q <> t_pid
          &&
          match states.(q) with
          | Running p -> fp_indep (footprint ~pid:q p) fp_t
          | Done _ | Crashed -> false))
    sleep

let sleep_filter_crash t_pid sleep =
  List.filter
    (fun u -> match u with Crash _ -> false | Step q -> q <> t_pid)
    sleep

(* The visited-state key. Everything that determines the remainder of a
   run's record is in here: remaining depth budget (via [k_depth]),
   crash order so far, each process's status (with its op-result history
   standing in for its continuation), the canonical store, and the sleep
   set (a state revisited with a different sleep set explores a
   different transition subset, so it must not be deduplicated against
   the first visit — including the sleep set in the key is the standard
   conservative fix). Only the schedule string falls outside the key,
   which is why properties must not read it (see the .mli). *)
type 'a proc_key = K_running of enc list | K_done of 'a | K_crashed

type 'a vkey = {
  k_depth : int;
  k_crashed : int list;
  k_procs : 'a proc_key array;
  k_env : Env.canonical;
  k_sleep : choice list;
}

type 'a visited = (int, 'a vkey list) Hashtbl.t

(* Strong structural hash up front, exact (polymorphic) equality on the
   bucket — collisions cost a comparison, never a wrong answer. *)
let seen_or_add (tbl : 'a visited) (key : 'a vkey) =
  let h = Hashtbl.hash_param 1000 1000 key in
  match Hashtbl.find_opt tbl h with
  | Some keys when List.exists (fun k -> k = key) keys -> true
  | Some keys ->
      Hashtbl.replace tbl h (key :: keys);
      false
  | None ->
      Hashtbl.add tbl h [ key ];
      false

(* ------------------------------------------------------------------ *)
(* The DFS engine (undo-journal based, shared by all phases)            *)
(* ------------------------------------------------------------------ *)

type 'a ctx = {
  env : Env.t;
  states : 'a pstate array;
  histories : enc list array;
  max_steps : int;
  max_crashes : int;
  property : 'a run -> (unit, string) Stdlib.result;
  visited : 'a visited option; (* None = dedup and sleep sets off *)
  run_cap : int;
  mutable runs : int;
  mutable truncated : int;
  mutable cex : ('a run * string) option;
  mutable pruned_states : int;
  mutable pruned_commutes : int;
  mutable exhausted : bool;
}

exception Task_stop
exception Phase_stop

let make_key ctx depth rev_crashed sleep =
  {
    k_depth = depth;
    k_crashed = rev_crashed;
    k_procs =
      Array.mapi
        (fun i s ->
          match s with
          | Running _ -> K_running ctx.histories.(i)
          | Done v -> K_done v
          | Crashed -> K_crashed)
        ctx.states;
    k_env = Env.canonical ctx.env;
    k_sleep = List.sort compare sleep;
  }

let mk_run ctx ~truncated rev_crashed rev_choices =
  let outcomes =
    Array.map
      (function
        | Running _ -> Exec.Blocked
        | Done v -> Exec.Decided v
        | Crashed -> Exec.Crashed)
      ctx.states
  in
  {
    outcomes;
    crashed = List.rev rev_crashed;
    truncated;
    schedule = schedule_string rev_choices;
  }

(* Account one completed (or depth-truncated) run inside a task. Tasks
   carry no registry of their own — the merge accounts metrics from the
   per-task summaries, which is what lets a remote worker ship seven
   integers instead of a registry and still merge byte-identically. *)
let finish ctx ~truncated rev_crashed rev_choices =
  let run = mk_run ctx ~truncated rev_crashed rev_choices in
  ctx.runs <- ctx.runs + 1;
  if truncated then ctx.truncated <- ctx.truncated + 1;
  (match ctx.property run with
  | Ok () -> ()
  | Error msg ->
      ctx.cex <- Some (run, msg);
      raise Task_stop);
  if ctx.runs >= ctx.run_cap then begin
    ctx.exhausted <- true;
    raise Task_stop
  end

(* Depth-first over choices, mutating [ctx.env] in place and undoing via
   the journal. [frontier = Some (fd, capture)] stops expansion at depth
   [fd] and hands the node to [capture] instead (phase A); [on_run] is
   called for every terminal node that survives deduplication. *)
let rec dfs ctx ~frontier ~on_run depth crashes rev_crashed rev_choices sleep =
  let live =
    let rec go i acc =
      if i < 0 then acc
      else
        go (i - 1)
          (match ctx.states.(i) with
          | Running _ -> i :: acc
          | Done _ | Crashed -> acc)
    in
    go (Array.length ctx.states - 1) []
  in
  if live = [] || depth >= ctx.max_steps then begin
    (* Terminal. The sleep set is irrelevant here (no transitions), so
       key terminals with an empty one: equal end states reached under
       different sleep sets are still one run record. *)
    match ctx.visited with
    | Some tbl when seen_or_add tbl (make_key ctx depth rev_crashed []) ->
        ctx.pruned_states <- ctx.pruned_states + 1
    | _ -> on_run ~truncated:(live <> []) rev_crashed rev_choices
  end
  else
    match ctx.visited with
    | Some tbl when seen_or_add tbl (make_key ctx depth rev_crashed sleep) ->
        ctx.pruned_states <- ctx.pruned_states + 1
    | _ -> (
        match frontier with
        | Some (fd, capture) when depth >= fd ->
            capture ~depth ~crashes ~rev_crashed ~rev_choices ~sleep
        | _ ->
            let sleep = ref sleep in
            let sleeping t =
              ctx.visited <> None && List.mem t !sleep
            in
            List.iter
              (fun pid ->
                (* Branch 1: pid executes one operation. *)
                (match ctx.states.(pid) with
                | Running prog ->
                    let t = Step pid in
                    if sleeping t then
                      ctx.pruned_commutes <- ctx.pruned_commutes + 1
                    else begin
                      let fp_t = footprint ~pid prog in
                      let cp = Env.checkpoint ctx.env in
                      let saved_h = ctx.histories.(pid) in
                      (match prog with
                      | Prog.Done v -> ctx.states.(pid) <- Done v
                      | Prog.Step (op, k) ->
                          let r = Env.apply ctx.env ~pid op in
                          ctx.histories.(pid) <-
                            encode_result op r :: saved_h;
                          ctx.states.(pid) <- Running (k r));
                      let child_sleep =
                        if ctx.visited = None then []
                        else sleep_filter ctx.states fp_t pid !sleep
                      in
                      dfs ctx ~frontier ~on_run (depth + 1) crashes rev_crashed
                        (t :: rev_choices) child_sleep;
                      Env.rollback ctx.env cp;
                      ctx.states.(pid) <- Running prog;
                      ctx.histories.(pid) <- saved_h;
                      if ctx.visited <> None then sleep := t :: !sleep
                    end
                | Done _ | Crashed -> assert false);
                (* Branch 2: pid crashes instead. *)
                if crashes < ctx.max_crashes then begin
                  let t = Crash pid in
                  if sleeping t then
                    ctx.pruned_commutes <- ctx.pruned_commutes + 1
                  else begin
                    let saved = ctx.states.(pid) in
                    ctx.states.(pid) <- Crashed;
                    let child_sleep =
                      if ctx.visited = None then []
                      else sleep_filter_crash pid !sleep
                    in
                    dfs ctx ~frontier ~on_run (depth + 1) (crashes + 1)
                      (pid :: rev_crashed) (t :: rev_choices) child_sleep;
                    ctx.states.(pid) <- saved;
                    if ctx.visited <> None then sleep := t :: !sleep
                  end
                end)
              live)

(* ------------------------------------------------------------------ *)
(* Frontier tasks and deterministic merging                             *)
(* ------------------------------------------------------------------ *)

type 'a task_result = {
  t_runs : int;
  t_truncated : int;
  t_cex : ('a run * string) option;
  t_pruned_states : int;
  t_pruned_commutes : int;
  t_exhausted : bool;
}

(* A subtree root captured at the frontier: a private copy of the store
   plus everything needed to resume the DFS exactly where phase A left
   off. Workers own their subtree outright, so no cross-domain sharing
   of mutable state ever happens. *)
type 'a subtree = {
  s_env : Env.t;
  s_states : 'a pstate array;
  s_histories : enc list array;
  s_depth : int;
  s_crashes : int;
  s_rev_crashed : int list;
  s_rev_choices : choice list;
  s_sleep : choice list;
}

type 'a task = T_leaf of 'a task_result | T_subtree of 'a subtree

let fresh_ctx ~env ~states ~histories ~max_steps ~max_crashes ~property ~dedup
    ~run_cap =
  {
    env;
    states;
    histories;
    max_steps;
    max_crashes;
    property;
    visited = (if dedup then Some (Hashtbl.create 512) else None);
    run_cap;
    runs = 0;
    truncated = 0;
    cex = None;
    pruned_states = 0;
    pruned_commutes = 0;
    exhausted = false;
  }

let task_result_of_ctx ctx =
  {
    t_runs = ctx.runs;
    t_truncated = ctx.truncated;
    t_cex = ctx.cex;
    t_pruned_states = ctx.pruned_states;
    t_pruned_commutes = ctx.pruned_commutes;
    t_exhausted = ctx.exhausted;
  }

(* Explore one captured subtree to completion. The subtree's state is
   never consumed: the DFS works on copies of the process arrays and
   rolls the (task-private) environment back to its root on every exit
   path, so running the same subtree twice gives the same answer — the
   merge relies on this to recompute any task the pool skipped. *)
let run_subtree ~dedup ~max_steps ~max_crashes ~run_cap ~property
    (s : 'a subtree) =
  Env.enable_journal s.s_env;
  let cp0 = Env.checkpoint s.s_env in
  let ctx =
    fresh_ctx ~env:s.s_env ~states:(Array.copy s.s_states)
      ~histories:(Array.copy s.s_histories) ~max_steps ~max_crashes ~property
      ~dedup ~run_cap
  in
  (try
     dfs ctx ~frontier:None ~on_run:(finish ctx) s.s_depth s.s_crashes
       s.s_rev_crashed s.s_rev_choices s.s_sleep
   with Task_stop -> Env.rollback s.s_env cp0);
  Env.disable_journal s.s_env;
  task_result_of_ctx ctx

(* Phase A: walk the tree sequentially down to [frontier_depth], with
   the same dedup/sleep machinery, emitting work in DFS order — runs
   completing above the frontier come out as already-resolved leaf
   tasks, frontier nodes as subtree tasks. The frontier depth must not
   depend on [jobs], or different job counts would slice the tree
   differently; it never does. *)
let explore_tasks ~dedup ~frontier_depth ~max_steps ~max_crashes ~max_runs
    ~property ~make () =
  let env0, progs = make () in
  Env.enable_journal env0;
  let n = Array.length progs in
  let ctx =
    fresh_ctx ~env:env0
      ~states:(Array.map (fun p -> Running p) progs)
      ~histories:(Array.make n []) ~max_steps ~max_crashes ~property ~dedup
      ~run_cap:max_int
  in
  let emitted = ref [] in
  let n_emitted = ref 0 in
  let emit e =
    emitted := e :: !emitted;
    incr n_emitted;
    (* Every task yields at least one run, so after [max_runs] tasks the
       merge can never include another: stop splitting. *)
    if !n_emitted >= max_runs then raise Phase_stop
  in
  let on_run ~truncated rev_crashed rev_choices =
    let run = mk_run ctx ~truncated rev_crashed rev_choices in
    let cex =
      match property run with Ok () -> None | Error msg -> Some (run, msg)
    in
    emit
      (T_leaf
         {
           t_runs = 1;
           t_truncated = (if truncated then 1 else 0);
           t_cex = cex;
           t_pruned_states = 0;
           t_pruned_commutes = 0;
           t_exhausted = false;
         });
    (* Any task after a counterexample can never be merged. *)
    if cex <> None then raise Phase_stop
  in
  let capture ~depth ~crashes ~rev_crashed ~rev_choices ~sleep =
    emit
      (T_subtree
         {
           s_env = Env.copy ctx.env;
           s_states = Array.copy ctx.states;
           s_histories = Array.copy ctx.histories;
           s_depth = depth;
           s_crashes = crashes;
           s_rev_crashed = rev_crashed;
           s_rev_choices = rev_choices;
           s_sleep = sleep;
         })
  in
  (try
     dfs ctx ~frontier:(Some (frontier_depth, capture)) ~on_run 0 0 [] [] []
   with Phase_stop -> ());
  Env.disable_journal env0;
  (Array.of_list (List.rev !emitted), ctx.pruned_states, ctx.pruned_commutes)

(* ------------------------------------------------------------------ *)
(* Sharding hooks: a plan is the jobs-independent slicing of the tree   *)
(* ------------------------------------------------------------------ *)

(* Everything the merge needs, computed once. The plan is built by the
   same phase-A walk regardless of who executes the tasks (in-process
   domains, or worker processes in [Dist]); because phase A is
   deterministic, a coordinator and its re-exec'd workers construct the
   very same plan from the same parameters, and a task index is a
   complete description of a unit of work. *)
type 'a plan = {
  pl_tasks : 'a task array;
  pl_phase_pruned_states : int;
  pl_phase_pruned_commutes : int;
  pl_dedup : bool;
  pl_max_steps : int;
  pl_max_crashes : int;
  pl_max_runs : int;
  pl_property : 'a run -> (unit, string) Stdlib.result;
}

let plan ?(max_crashes = 0) ?(max_runs = 2_000_000) ?(dedup = true)
    ?(frontier_depth = 3) ~max_steps ~make ~property () =
  let tasks, phase_pruned_states, phase_pruned_commutes =
    explore_tasks ~dedup ~frontier_depth ~max_steps ~max_crashes ~max_runs
      ~property ~make ()
  in
  {
    pl_tasks = tasks;
    pl_phase_pruned_states = phase_pruned_states;
    pl_phase_pruned_commutes = phase_pruned_commutes;
    pl_dedup = dedup;
    pl_max_steps = max_steps;
    pl_max_crashes = max_crashes;
    pl_max_runs = max_runs;
    pl_property = property;
  }

let plan_tasks p = Array.length p.pl_tasks

type task_summary = {
  ts_leaf : bool;
  ts_runs : int;
  ts_truncated : int;
  ts_cex : bool;
  ts_pruned_states : int;
  ts_pruned_commutes : int;
  ts_exhausted : bool;
}

let summary_of_result ~leaf (r : 'a task_result) =
  {
    ts_leaf = leaf;
    ts_runs = r.t_runs;
    ts_truncated = r.t_truncated;
    ts_cex = r.t_cex <> None;
    ts_pruned_states = r.t_pruned_states;
    ts_pruned_commutes = r.t_pruned_commutes;
    ts_exhausted = r.t_exhausted;
  }

(* Execute one task of the plan. Leaves were resolved during phase A;
   subtrees are re-runnable any number of times (see [run_subtree]), so
   a skipped or remotely-computed task can always be recomputed here. *)
let task_outcome p i =
  match p.pl_tasks.(i) with
  | T_leaf r -> (summary_of_result ~leaf:true r, r.t_cex)
  | T_subtree s ->
      let r =
        run_subtree ~dedup:p.pl_dedup ~max_steps:p.pl_max_steps
          ~max_crashes:p.pl_max_crashes ~run_cap:p.pl_max_runs
          ~property:p.pl_property s
      in
      (summary_of_result ~leaf:false r, r.t_cex)

(* Merge strictly in task (= DFS) order. Budget and counterexample
   cut-offs are decided here, from per-task totals, so the outcome is a
   pure function of the summaries — identical at any job count, and
   identical whether summaries came from domains or worker processes.
   [outcome_of] must supply the full counterexample for tasks whose
   summary says [ts_cex]; a caller holding only a remote summary re-runs
   that task locally ([task_outcome] is deterministic). Metrics are
   accounted from the summaries: leaves always create [explore.runs]
   (their single run), subtrees create run counters only when non-zero
   but always create both pruning counters — mirroring what a per-task
   registry used to record, so snapshots are stable across versions. *)
let merge_plan ?metrics ?on_progress p ~outcome_of =
  let ntasks = Array.length p.pl_tasks in
  let explored = ref 0 in
  let truncated = ref 0 in
  let pruned_s = ref p.pl_phase_pruned_states in
  let pruned_c = ref p.pl_phase_pruned_commutes in
  let cex = ref None in
  let exhausted = ref false in
  (try
     for i = 0 to ntasks - 1 do
       if !explored >= p.pl_max_runs then begin
         exhausted := true;
         raise Found
       end;
       let (s : task_summary), c = outcome_of i in
       explored := !explored + s.ts_runs;
       truncated := !truncated + s.ts_truncated;
       pruned_s := !pruned_s + s.ts_pruned_states;
       pruned_c := !pruned_c + s.ts_pruned_commutes;
       (match metrics with
       | Some m ->
           if s.ts_leaf then begin
             Metrics.incr ~by:s.ts_runs (Metrics.counter m "explore.runs");
             if s.ts_truncated > 0 then
               Metrics.incr ~by:s.ts_truncated
                 (Metrics.counter m "explore.truncated");
             if s.ts_cex then
               Metrics.incr (Metrics.counter m "explore.counterexamples")
           end
           else begin
             if s.ts_runs > 0 then
               Metrics.incr ~by:s.ts_runs (Metrics.counter m "explore.runs");
             if s.ts_truncated > 0 then
               Metrics.incr ~by:s.ts_truncated
                 (Metrics.counter m "explore.truncated");
             if s.ts_cex then
               Metrics.incr (Metrics.counter m "explore.counterexamples");
             Metrics.incr ~by:s.ts_pruned_states
               (Metrics.counter m "explore.pruned_states");
             Metrics.incr ~by:s.ts_pruned_commutes
               (Metrics.counter m "explore.pruned_commutes")
           end
       | None -> ());
       heartbeat on_progress !explored;
       if s.ts_cex then begin
         (match c with
         | Some c -> cex := Some c
         | None ->
             (* the summary says this task found the counterexample, so a
                local deterministic re-run recovers the full record *)
             cex := snd (task_outcome p i));
         raise Found
       end;
       if s.ts_exhausted then begin
         exhausted := true;
         raise Found
       end
     done;
     if !explored >= p.pl_max_runs then exhausted := true
   with Found -> ());
  note_by metrics "explore.pruned_states" p.pl_phase_pruned_states;
  note_by metrics "explore.pruned_commutes" p.pl_phase_pruned_commutes;
  (* The plan engine has no source-set pruning; create the counter
     anyway (at zero) so snapshots have the same membership whichever
     engine produced the result. *)
  note_by metrics "explore.pruned_source" 0;
  {
    explored = !explored;
    counterexample = !cex;
    exhausted_budget = !exhausted;
    pruned_states = !pruned_s;
    pruned_commutes = !pruned_c;
    pruned_source = 0;
  }

(* The plan-engine executor: phase-A slicing, indexed fan-out, in-order
   merge. This is the canonical semantics [exhaustive] promises — the
   sharded twin of what [Dist] coordinators run — and the fallback the
   work-stealing engine defers to the moment a counterexample, the run
   budget, or an exception enters the picture. *)
let exhaustive_plan ?max_crashes ?max_runs ?metrics ?on_progress ?(jobs = 1)
    ?oversubscribe ?dedup ?frontier_depth ~max_steps ~make ~property () =
  let p =
    plan ?max_crashes ?max_runs ?dedup ?frontier_depth ~max_steps ~make
      ~property ()
  in
  let ntasks = plan_tasks p in
  (* Lowest task index with a counterexample found so far: the merge
     stops there, so any task beyond it is dead work and workers skip
     it. Monotonically decreasing, hence safe to race on. *)
  let best_cex = Atomic.make max_int in
  let rec note_cex i =
    let cur = Atomic.get best_cex in
    if i < cur && not (Atomic.compare_and_set best_cex cur i) then note_cex i
  in
  let run_task i =
    let ((s, _) as outcome) = task_outcome p i in
    if s.ts_cex then note_cex i;
    outcome
  in
  let results =
    Par.run ~jobs ?oversubscribe
      ~skip:(fun i -> i > Atomic.get best_cex)
      ~tasks:ntasks run_task
  in
  merge_plan ?metrics ?on_progress p ~outcome_of:(fun i ->
      match results.(i) with Some r -> r | None -> task_outcome p i)

(* ------------------------------------------------------------------ *)
(* Engine C: shared visited table + work stealing + source-set pruning  *)
(* ------------------------------------------------------------------ *)

(* Refined per-operation footprints. The coarse [footprint] relation
   says two writes to the same instance conflict; many of them in fact
   commute, and for the single-writer snapshot objects at the heart of
   the paper's constructions — every process writes its own component —
   *all* sibling writes commute. The refined relation is evaluated
   against the current store state (Godefroid's conditional
   independence), which is sound exactly because the sleep filter runs
   at the state the two candidate operations would both execute from. *)
type rfp =
  | R_none
  | R_oracle of Op.fam * int
  | R_read of Op.fam * Op.key
  | R_write of Op.fam * Op.key * Univ.t
  | R_cas of Op.fam * Op.key
  | R_snap_set of Op.fam * Op.key
  | R_snap_scan of Op.fam * Op.key
  | R_ts of Op.fam * Op.key
  | R_cons of Op.fam * Op.key * int
  | R_kset of Op.fam * Op.key
  | R_enq of Op.fam * Op.key
  | R_deq of Op.fam * Op.key

let rfootprint (type a) ~pid (prog : a Prog.t) =
  match prog with
  | Prog.Done _ -> R_none
  | Prog.Step (op, _) -> (
      match op with
      | Op.Yield -> R_none
      | Op.Oracle_query (f, _) -> R_oracle (f, pid)
      | Op.Reg_read (f, k) -> R_read (f, k)
      | Op.Reg_write (f, k, v) -> R_write (f, k, v)
      | Op.Cas (f, k, _, _) -> R_cas (f, k)
      | Op.Snap_set (f, k, _) -> R_snap_set (f, k)
      | Op.Snap_scan (f, k) -> R_snap_scan (f, k)
      | Op.Ts (f, k) -> R_ts (f, k)
      | Op.Cons_propose (f, k, _) -> R_cons (f, k, pid)
      | Op.Kset_propose (f, k, _) -> R_kset (f, k)
      | Op.Queue_enq (f, k, _) -> R_enq (f, k)
      | Op.Queue_deq (f, k) -> R_deq (f, k))


(* Same shared-object location, without allocating the [option] pair
   an extraction function would — this runs once per (sleep entry ×
   explored branch). *)
let rsame_loc a b =
  match (a, b) with
  | ( ( R_read (f1, k1)
      | R_write (f1, k1, _)
      | R_cas (f1, k1)
      | R_snap_set (f1, k1)
      | R_snap_scan (f1, k1)
      | R_ts (f1, k1)
      | R_cons (f1, k1, _)
      | R_kset (f1, k1)
      | R_enq (f1, k1)
      | R_deq (f1, k1) ),
      ( R_read (f2, k2)
      | R_write (f2, k2, _)
      | R_cas (f2, k2)
      | R_snap_set (f2, k2)
      | R_snap_scan (f2, k2)
      | R_ts (f2, k2)
      | R_cons (f2, k2, _)
      | R_kset (f2, k2)
      | R_enq (f2, k2)
      | R_deq (f2, k2) ) ) ->
      String.equal f1 f2 && k1 = k2
  | _ -> false

(* Do the two *next* operations of two distinct processes commute at
   the current state of [env] — same final store and the same result
   delivered to each process, whichever goes first? Each rule below is
   an exact claim about [Env.apply]:
   - sibling [Snap_set]s write different components (writer
     discipline), so they always commute;
   - equal-value register writes leave the same store either way;
   - [Ts] on a won instance is a pure read returning [false];
   - [Cons_propose] on a decided instance returns the decision, but
     still *joins* the accessor set — commuting additionally needs the
     join to be harmless in both orders (both already accessors, or
     room for both under the port bound, the accessor list being
     canonically sorted);
   - enqueue and dequeue on a nonempty queue act on opposite ends;
     two dequeues on an empty queue are both no-op reads. *)
let rf_indep env a b =
  match (a, b) with
  | R_none, _ | _, R_none -> true
  | R_oracle (f1, p1), R_oracle (f2, p2) -> not (String.equal f1 f2 && p1 = p2)
  | R_oracle _, _ | _, R_oracle _ -> true
  | _ -> (
      (not (rsame_loc a b))
      ||
      match (a, b) with
      | R_read _, R_read _ -> true
      | R_snap_scan _, R_snap_scan _ -> true
      | R_snap_set _, R_snap_set _ -> true
      | R_write (_, _, v1), R_write (_, _, v2) -> v1 = v2
      | R_read (f, k), R_write (_, _, v) | R_write (f, k, v), R_read _ ->
          Env.peek_register env f k = Some v
      | R_ts (f, k), R_ts _ -> Env.peek_ts env f k
      | R_cons (f, k, p), R_cons (_, _, q) ->
          Env.cons_decided env f k
          &&
          let acc = Env.cons_accessors env f k in
          let joins =
            (if List.mem p acc then 0 else 1)
            + if List.mem q acc then 0 else 1
          in
          List.length acc + joins <= Env.x env
      | R_enq (f, k), R_deq _ | R_deq (f, k), R_enq _ ->
          Env.queue_length env f k > 0
      | R_deq (f, k), R_deq _ -> Env.queue_length env f k = 0
      | _ -> false)

(* Coarse (state-blind) independence of two refined footprints — what
   [fp_indep (coarse_of a) (coarse_of b)] computes, without building
   the coarse values. Only valid under [rf_indep env a b = true]: the
   one case where the formulas differ (two oracle queries by the same
   process) cannot pass the refined check. *)
let coarse_indep_r a b =
  let is_read = function R_read _ | R_snap_scan _ -> true | _ -> false in
  (not (rsame_loc a b)) || (is_read a && is_read b)

let rloc = function
  | R_none | R_oracle _ -> None
  | R_read (f, k)
  | R_write (f, k, _)
  | R_cas (f, k)
  | R_snap_set (f, k)
  | R_snap_scan (f, k)
  | R_ts (f, k)
  | R_cons (f, k, _)
  | R_kset (f, k)
  | R_enq (f, k)
  | R_deq (f, k) ->
      Some (f, k)

(* The store fingerprint, maintained incrementally: the same two sorted
   association lists [Env.canonical] would produce, plus an XOR of a
   hash of every entry. One operation touches one instance, so a step
   updates one entry (sharing the untouched tail), and the XOR
   composition makes the hash delta O(1). Each entry caches its own
   hash so an update hashes only the new entry. [es_hash] is a pure
   function of the two lists, so it may sit inside the visited key:
   equal signatures always agree on it (and it doubles as a fast
   equality reject). Backtracking restores the previous value by
   pointer — the lists are immutable. *)
type esig = {
  es_inst : (int * (Op.fam * Op.key) * Env.instance_sig) list;
  es_orc : (int * (Op.fam * int) * int) list;
  es_hash : int;
}

let esig_of_canonical c =
  let inst, orc = Env.canonical_parts c in
  let inst = List.map (fun ((k, s) as e) -> (Hashtbl.hash e, k, s)) inst in
  let orc = List.map (fun ((k, n) as e) -> (Hashtbl.hash e, k, n)) orc in
  let xor l h = List.fold_left (fun h (eh, _, _) -> h lxor eh) h l in
  { es_inst = inst; es_orc = orc; es_hash = xor orc (xor inst 0) }

(* Sorted-assoc update with structural sharing: [Some s] inserts or
   replaces, [None] removes. Returns the new list (physically the input
   when nothing changed) and the XOR delta of entry hashes. *)
let rec sig_update key v l =
  match l with
  | [] -> (
      match v with
      | None -> (l, 0)
      | Some s ->
          let eh = Hashtbl.hash (key, s) in
          ([ (eh, key, s) ], eh))
  | ((eh', k', s') as e) :: tl -> (
      let c = compare key k' in
      if c < 0 then
        match v with
        | None -> (l, 0)
        | Some s ->
            let eh = Hashtbl.hash (key, s) in
            ((eh, key, s) :: l, eh)
      else if c = 0 then
        match v with
        | None -> (tl, eh')
        | Some s ->
            if s = s' then (l, 0)
            else
              let eh = Hashtbl.hash (key, s) in
              ((eh, key, s) :: tl, eh' lxor eh)
      else
        let tl', d = sig_update key v tl in
        if tl' == tl then (l, 0) else (e :: tl', d))

let rec orc_bump key l =
  match l with
  | [] ->
      let eh = Hashtbl.hash (key, 1) in
      ([ (eh, key, 1) ], eh)
  | ((eh', k', n) as e) :: tl ->
      let c = compare key k' in
      if c < 0 then
        let eh = Hashtbl.hash (key, 1) in
        ((eh, key, 1) :: l, eh)
      else if c = 0 then
        let eh = Hashtbl.hash (key, n + 1) in
        ((eh, key, n + 1) :: tl, eh' lxor eh)
      else
        let tl', d = orc_bump key tl in
        (e :: tl', d)

(* Advance the fingerprint across one applied operation, whose refined
   footprint names the single location it can have touched. Must run
   after [Env.apply] (it re-reads the touched instance). *)
let esig_step env es fp ~pid =
  match fp with
  | R_none -> es
  | R_oracle (f, _) ->
      let l, d = orc_bump (f, pid) es.es_orc in
      { es with es_orc = l; es_hash = es.es_hash lxor d }
  | _ -> (
      match rloc fp with
      | None -> es
      | Some (f, k) ->
          let l, d = sig_update (f, k) (Env.instance_sig env f k) es.es_inst in
          if l == es.es_inst then es
          else { es with es_inst = l; es_hash = es.es_hash lxor d })

(* Sleep entries are tagged: [true] means the entry's survival through
   some past filter relied on the refined relation where the coarse one
   would have evicted it. Pruning a tagged entry is a source-set cut
   (counted separately); the tag is part of the visited key, so the
   prune tallies stay functions of the key alone. The filter runs
   BEFORE [Env.apply] — the refined rules are conditions on the state
   both candidate operations execute from. *)
(* [fps] holds the refined footprint of every process's next operation
   at the current node ([R_none] for finished or crashed processes) —
   computed once per node and shared by every branch's filter call.
   Written as a direct recursion (not [List.filter_map]) so the hot
   path allocates no closure. *)
let rec rsleep_filter env states fps fp_t t_pid sleep =
  match sleep with
  | [] -> []
  | ((u, tag) as e) :: tl -> (
      match u with
      | Crash q ->
          if q <> t_pid then e :: rsleep_filter env states fps fp_t t_pid tl
          else rsleep_filter env states fps fp_t t_pid tl
      | Step q ->
          if q = t_pid then rsleep_filter env states fps fp_t t_pid tl
          else (
            match states.(q) with
            | Running _ ->
                let fu = fps.(q) in
                if rf_indep env fu fp_t then
                  if tag || coarse_indep_r fu fp_t then
                    e :: rsleep_filter env states fps fp_t t_pid tl
                  else (u, true) :: rsleep_filter env states fps fp_t t_pid tl
                else rsleep_filter env states fps fp_t t_pid tl
            | Done _ | Crashed -> rsleep_filter env states fps fp_t t_pid tl))

let rsleep_filter_crash t_pid sleep =
  List.filter_map
    (fun ((u, _) as e) ->
      match u with
      | Crash _ -> None
      | Step q -> if q <> t_pid then Some e else None)
    sleep

(* The shared-table visited key: same content as [vkey] but with the
   tagged sleep set (two visits that differ only in tags may split
   their prunes between the two counters), each running process's
   operation history collapsed to its interned id (see
   [Visited.Intern]; id equality is history equality, so hashing and
   comparing is O(1) in history length), and the store represented by
   the incrementally-maintained [esig]. [ck_procs] is a flat int
   array: the history id while running, [-1] crashed, [-2] finished
   (ids are never negative) — finished processes' decided values live
   in [ck_done], sorted by pid. *)
type 'a ckey = {
  ck_depth : int;
  ck_crashed : int list;
  ck_procs : int array;
  ck_done : (int * 'a) list;
  ck_env : esig;
  ck_sleep : (choice * bool) list;
}

(* A hand-rolled hash so the per-arrival cost is O(key skeleton), not
   O(store): the env component contributes its precomputed [es_hash].
   Any pure function of the key is a valid [Visited] hash. *)
let ckey_hash k =
  let h = ref ((k.ck_depth * 0x9e3779b9) lxor k.ck_env.es_hash) in
  let mix v = h := (!h * 31) lxor v in
  List.iter (fun p -> mix (p + 1)) k.ck_crashed;
  Array.iter mix k.ck_procs;
  List.iter (fun (p, v) -> mix ((p * 31) lxor Hashtbl.hash v)) k.ck_done;
  List.iter
    (fun (u, tag) ->
      let c = match u with Step p -> 2 * p | Crash p -> (2 * p) + 1 in
      mix ((4 * c) + if tag then 3 else 2))
    k.ck_sleep;
  !h

(* A unit of work-stealing work: a subtree root owned outright by
   whichever worker runs it (private env copy, private arrays).
   [w_branches = Some rest] resumes a split node's remaining branch
   list — the node's visited-table insertion already happened on the
   splitting worker, so the resume goes straight to the branch loop.
   [w_sched] is the pretty-printed schedule prefix of the subtree
   root, so terminals can render their schedule without carrying the
   choice list. *)
type 'a witem = {
  w_env : Env.t;
  w_states : 'a pstate array;
  w_pkey : int array;
  w_done : (int * 'a) list;
  w_esig : esig;
  w_depth : int;
  w_crashes : int;
  w_rev_crashed : int list;
  w_sched : string;
  w_sleep : (choice * bool) list;
  w_branches : choice list option;
}

(* Shared read-mostly engine state. [g_stop] is the one-way abort: a
   counterexample, the run budget, or any exception flips it, every
   worker drains, and the caller re-runs the plan engine — whose
   result in exactly those cases is the documented semantics. *)
type 'a cshared = {
  g_visited : 'a ckey Visited.t option;
  g_intern : (int * enc) Visited.Intern.t;
      (* names each (history-so-far, next result) pair; a process's
         whole history is thus one id, rebuilt incrementally per step *)
  g_runs : int Atomic.t;
  g_stop : bool Atomic.t;
  g_run_cap : int;
  g_max_steps : int;
  g_max_crashes : int;
  g_property : 'a run -> (unit, string) Stdlib.result;
  g_progress : (runs:int -> unit) option;
}

(* Per-worker tallies, folded after the join. All deterministic in the
   clean (no-abort) case — see the closure argument in DESIGN §14 —
   except [c_splits] and the visited stats' bloom_fp. *)
type cworker = {
  mutable c_runs : int;
  mutable c_truncated : int;
  mutable c_pruned_states : int;
  mutable c_pruned_commutes : int;
  mutable c_pruned_source : int;
  mutable c_splits : int;
  c_vstats : Visited.stats;
}

let fresh_cworker () =
  {
    c_runs = 0;
    c_truncated = 0;
    c_pruned_states = 0;
    c_pruned_commutes = 0;
    c_pruned_source = 0;
    c_splits = 0;
    c_vstats = Visited.fresh_stats ();
  }

exception Abort

(* Insert a finished process's decided value, keeping the list sorted
   by pid so completion order cannot split equal states. *)
let rec dvals_add pid v = function
  | [] -> [ (pid, v) ]
  | (p, _) as e :: tl ->
      if pid < p then (pid, v) :: e :: tl else e :: dvals_add pid v tl

let cseen g acc key =
  match g.g_visited with
  | None -> false
  | Some tbl -> Visited.seen_or_add tbl ~hash:(ckey_hash key) key acc.c_vstats

(* Sorted insert keeping the sleep list canonical by construction
   (choices are unique within a list, so ordering by choice is total).
   [rsleep_filter] only keeps, drops or retags entries in place, so
   sortedness is preserved down the tree and the visited key can embed
   the list as-is instead of sorting at every arrival. *)
let rec sleep_insert b = function
  | [] -> [ (b, false) ]
  | (u, _) as e :: tl ->
      if compare b u < 0 then (b, false) :: e :: tl
      else e :: sleep_insert b tl

(* Run one work item to completion (or abort). The DFS mirrors [dfs]
   exactly — same branch order, same terminal handling — with three
   changes: the visited table is shared, sleep sets are tagged and
   filtered through the refined relation, and when a sibling worker is
   starving the remainder of the current node's branch list is split
   off as a new item. *)
let crun (g : 'a cshared) (acc : cworker) pool ~worker (it : 'a witem) =
  let dedup = g.g_visited <> None in
  let env = it.w_env in
  let states = it.w_states in
  (* [pkey] mirrors [states] as flat ints (history id / -1 crashed /
     -2 done), so a visited key's process component is one unboxed
     array copy. [dvals] carries finished processes' decided values,
     sorted by pid. [esig] is the store fingerprint. All three advance
     on descent and restore (an int or pointer store) on backtrack. *)
  let pkey = it.w_pkey in
  let dvals = ref it.w_done in
  let esig = ref it.w_esig in
  (* The schedule rendered incrementally along the path: append on
     descent, truncate on backtrack. O(1) per step instead of a
     per-terminal list reversal and concat. *)
  let sbuf = Buffer.create 64 in
  Buffer.add_string sbuf it.w_sched;
  let ckey depth rev_crashed sleep =
    {
      ck_depth = depth;
      ck_crashed = rev_crashed;
      ck_procs = Array.copy pkey;
      ck_done = !dvals;
      ck_env = !esig;
      ck_sleep = sleep;
    }
  in
  let complete ~truncated rev_crashed =
    let outcomes =
      Array.map
        (function
          | Running _ -> Exec.Blocked
          | Done v -> Exec.Decided v
          | Crashed -> Exec.Crashed)
        states
    in
    let run =
      {
        outcomes;
        crashed = List.rev rev_crashed;
        truncated;
        schedule = Buffer.contents sbuf;
      }
    in
    acc.c_runs <- acc.c_runs + 1;
    if truncated then acc.c_truncated <- acc.c_truncated + 1;
    let total = Atomic.fetch_and_add g.g_runs 1 + 1 in
    (match g.g_property run with
    | Ok () -> ()
    | Error _ ->
        Atomic.set g.g_stop true;
        raise Abort
    | exception _ ->
        Atomic.set g.g_stop true;
        raise Abort);
    if total >= g.g_run_cap then begin
      Atomic.set g.g_stop true;
      raise Abort
    end;
    if worker = 0 then heartbeat g.g_progress total
  in
  let rec node depth crashes rev_crashed sleep resume =
    if Atomic.get g.g_stop then raise Abort;
    match resume with
    | Some branches -> expand (node_fps ()) depth crashes rev_crashed sleep branches
    | None ->
        let live =
          let rec go i l =
            if i < 0 then l
            else
              go (i - 1)
                (match states.(i) with
                | Running _ -> i :: l
                | Done _ | Crashed -> l)
          in
          go (Array.length states - 1) []
        in
        if live = [] || depth >= g.g_max_steps then begin
          if dedup && cseen g acc (ckey depth rev_crashed []) then
            acc.c_pruned_states <- acc.c_pruned_states + 1
          else complete ~truncated:(live <> []) rev_crashed
        end
        else if dedup && cseen g acc (ckey depth rev_crashed sleep) then
          acc.c_pruned_states <- acc.c_pruned_states + 1
        else
          let branches =
            List.concat_map
              (fun pid ->
                Step pid
                :: (if crashes < g.g_max_crashes then [ Crash pid ] else []))
              live
          in
          expand (node_fps ()) depth crashes rev_crashed sleep branches
  and node_fps () =
    (* Refined footprints of every process's next op at this node,
       shared by all the node's branches (states are restored between
       descents, so they cannot go stale). Skipped when not dedup'ing:
       the filter is the only consumer. *)
    if not dedup then [||]
    else
      Array.mapi
        (fun pid s ->
          match s with
          | Running p -> rfootprint ~pid p
          | Done _ | Crashed -> R_none)
        states
  and expand fps depth crashes rev_crashed sleep = function
    | [] -> ()
    | b :: rest -> (
        if Atomic.get g.g_stop then raise Abort;
        let sleeping =
          if dedup then
            List.find_map (fun (u, tag) -> if u = b then Some tag else None)
              sleep
          else None
        in
        match sleeping with
        | Some tag ->
            if tag then acc.c_pruned_source <- acc.c_pruned_source + 1
            else acc.c_pruned_commutes <- acc.c_pruned_commutes + 1;
            expand fps depth crashes rev_crashed sleep rest
        | None ->
            (* [b] will be explored, so subsequent branches — run here
               or offloaded — see it asleep. *)
            let sleep' = if dedup then sleep_insert b sleep else sleep in
            let offloaded =
              rest <> []
              && Par.want_work pool
              && Par.push pool ~worker
                   {
                     w_env = Env.copy env;
                     w_states = Array.copy states;
                     w_pkey = Array.copy pkey;
                     w_done = !dvals;
                     w_esig = !esig;
                     w_depth = depth;
                     w_crashes = crashes;
                     w_rev_crashed = rev_crashed;
                     w_sched = Buffer.contents sbuf;
                     w_sleep = sleep';
                     w_branches = Some rest;
                   }
            in
            if offloaded then acc.c_splits <- acc.c_splits + 1;
            let spos = Buffer.length sbuf in
            if spos > 0 then Buffer.add_char sbuf '.';
            Buffer.add_string sbuf (pp_choice b);
            (match b with
            | Step pid -> (
                match states.(pid) with
                | Running prog ->
                    (* Filter BEFORE applying: the refined rules are
                       conditions on the pre-step state. *)
                    let child_sleep =
                      if dedup then
                        rsleep_filter env states fps fps.(pid) pid sleep
                      else []
                    in
                    let cp = Env.checkpoint env in
                    let saved_pk = pkey.(pid) in
                    let saved_dv = !dvals in
                    let saved_es = !esig in
                    (match prog with
                    | Prog.Done v ->
                        states.(pid) <- Done v;
                        if dedup then begin
                          pkey.(pid) <- -2;
                          dvals := dvals_add pid v saved_dv
                        end
                    | Prog.Step (op, k) ->
                        let r = Env.apply env ~pid op in
                        if dedup then begin
                          let e = (saved_pk, encode_result op r) in
                          pkey.(pid) <-
                            Visited.Intern.id g.g_intern
                              ~hash:(Hashtbl.hash_param 64 256 e)
                              e;
                          esig := esig_step env saved_es fps.(pid) ~pid
                        end;
                        states.(pid) <- Running (k r));
                    node (depth + 1) crashes rev_crashed child_sleep None;
                    Env.rollback env cp;
                    states.(pid) <- Running prog;
                    pkey.(pid) <- saved_pk;
                    dvals := saved_dv;
                    esig := saved_es
                | Done _ | Crashed -> assert false)
            | Crash pid ->
                let saved = states.(pid) in
                let saved_pk = pkey.(pid) in
                states.(pid) <- Crashed;
                pkey.(pid) <- -1;
                let child_sleep =
                  if dedup then rsleep_filter_crash pid sleep else []
                in
                node (depth + 1) (crashes + 1) (pid :: rev_crashed) child_sleep
                  None;
                states.(pid) <- saved;
                pkey.(pid) <- saved_pk);
            Buffer.truncate sbuf spos;
            if not offloaded then expand fps depth crashes rev_crashed sleep' rest)
  in
  Env.enable_journal env;
  (try node it.w_depth it.w_crashes it.w_rev_crashed it.w_sleep it.w_branches
   with Abort -> ());
  Env.disable_journal env

let exhaustive ?max_crashes ?max_runs ?metrics ?on_progress ?(jobs = 1)
    ?(oversubscribe = false) ?(dedup = true) ?frontier_depth ~max_steps ~make
    ~property () =
  match frontier_depth with
  | Some _ ->
      (* An explicit frontier is a request for the static-split plan
         engine — the path [Dist] coordinators and the bench's serial
         baseline pin. *)
      exhaustive_plan ?max_crashes ?max_runs ?metrics ?on_progress ~jobs
        ~oversubscribe ~dedup ?frontier_depth ~max_steps ~make ~property ()
  | None ->
  let run_cap = Option.value max_runs ~default:2_000_000 in
  let g =
    {
      g_visited = (if dedup then Some (Visited.create ~buckets:131072 ()) else None);
      g_intern = Visited.Intern.create ();
      g_runs = Atomic.make 0;
      g_stop = Atomic.make false;
      g_run_cap = run_cap;
      g_max_steps = max_steps;
      g_max_crashes = Option.value max_crashes ~default:0;
      g_property = property;
      g_progress = on_progress;
    }
  in
  let njobs =
    if jobs < 1 then invalid_arg "Explore.exhaustive: jobs must be >= 1";
    if oversubscribe then jobs
    else min jobs (Domain.recommended_domain_count ())
  in
  let accs = Array.init njobs (fun _ -> fresh_cworker ()) in
  let env0, progs = make () in
  let root =
    {
      w_env = env0;
      w_states = Array.map (fun p -> Running p) progs;
      w_pkey = Array.make (Array.length progs) 0;
      w_done = [];
      w_esig = esig_of_canonical (Env.canonical env0);
      w_depth = 0;
      w_crashes = 0;
      w_rev_crashed = [];
      w_sched = "";
      w_sleep = [];
      w_branches = None;
    }
  in
  let pool =
    Par.run_dynamic ~jobs:njobs ~oversubscribe:true ~roots:[ root ]
      (fun pool ~worker it ->
        if not (Atomic.get g.g_stop) then crun g accs.(worker) pool ~worker it)
  in
  if Atomic.get g.g_stop then
    (* A counterexample, the run budget, or an exception: defer to the
       plan engine, whose in-order merge defines the result (the
       DFS-first counterexample, the sequential budget semantics, the
       original exception). Nothing from the aborted pass is kept —
       no metrics were recorded yet. *)
    exhaustive_plan ?max_crashes ?max_runs ?metrics ?on_progress ~jobs
      ~oversubscribe ~dedup ?frontier_depth ~max_steps ~make ~property ()
  else begin
    let sum f = Array.fold_left (fun n a -> n + f a) 0 accs in
    let explored = sum (fun a -> a.c_runs) in
    let truncated = sum (fun a -> a.c_truncated) in
    let pruned_states = sum (fun a -> a.c_pruned_states) in
    let pruned_commutes = sum (fun a -> a.c_pruned_commutes) in
    let pruned_source = sum (fun a -> a.c_pruned_source) in
    let hits = sum (fun a -> a.c_vstats.Visited.hits) in
    let misses = sum (fun a -> a.c_vstats.Visited.misses) in
    (match metrics with
    | None -> ()
    | Some m ->
        note_by metrics "explore.runs" explored;
        if truncated > 0 then note_by metrics "explore.truncated" truncated;
        note_by metrics "explore.pruned_states" pruned_states;
        note_by metrics "explore.pruned_commutes" pruned_commutes;
        note_by metrics "explore.pruned_source" pruned_source;
        note_by metrics "explore.visited.hits" hits;
        note_by metrics "explore.visited.misses" misses;
        (* Timing-dependent tallies: only when the registry accepts
           wall-clock-ish values, so snapshot-compared runs stay
           byte-identical at any job count. *)
        if Metrics.wall_clock m then begin
          note_by metrics "explore.par.steals" (Par.steals pool);
          note_by metrics "explore.par.splits" (sum (fun a -> a.c_splits));
          note_by metrics "explore.visited.bloom_fp"
            (sum (fun a -> a.c_vstats.Visited.bloom_fp));
          Array.iteri
            (fun i a ->
              note_by metrics
                (Printf.sprintf "explore.par.d%d.runs" i)
                a.c_runs;
              note_by metrics
                (Printf.sprintf "explore.par.d%d.visited_hits" i)
                a.c_vstats.Visited.hits;
              note_by metrics
                (Printf.sprintf "explore.par.d%d.visited_misses" i)
                a.c_vstats.Visited.misses)
            accs
        end);
    {
      explored;
      counterexample = None;
      exhausted_budget = false;
      pruned_states;
      pruned_commutes;
      pruned_source;
    }
  end

(* ------------------------------------------------------------------ *)
(* Reference engine: the original copy-per-branch DFS                   *)
(* ------------------------------------------------------------------ *)

(* Kept verbatim as the baseline the bench's EX row measures speedups
   against, and as a differential oracle for the journal engine. *)
let exhaustive_copy ?(max_crashes = 0) ?(max_runs = 2_000_000) ~max_steps ~make
    ~property () =
  let env0, progs = make () in
  let explored = ref 0 in
  let counterexample = ref None in
  let exhausted = ref false in
  let finish states crashed truncated rev_choices =
    let outcomes =
      Array.map
        (function
          | Running _ -> Exec.Blocked
          | Done v -> Exec.Decided v
          | Crashed -> Exec.Crashed)
        states
    in
    let run =
      {
        outcomes;
        crashed = List.rev crashed;
        truncated;
        schedule = schedule_string rev_choices;
      }
    in
    incr explored;
    (match property run with
    | Ok () -> ()
    | Error msg ->
        counterexample := Some (run, msg);
        raise Found);
    if !explored >= max_runs then begin
      exhausted := true;
      raise Found
    end
  in
  let rec dfs env states depth crashes crashed rev_choices =
    let live =
      Array.to_list states
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, s) ->
             match s with Running _ -> Some i | Done _ | Crashed -> None)
    in
    if live = [] then finish states crashed false rev_choices
    else if depth >= max_steps then finish states crashed true rev_choices
    else
      List.iter
        (fun pid ->
          (match states.(pid) with
          | Running prog ->
              let env' = Env.copy env in
              let states' = Array.copy states in
              (match prog with
              | Prog.Done v -> states'.(pid) <- Done v
              | Prog.Step (op, k) ->
                  let r = Env.apply env' ~pid op in
                  states'.(pid) <- Running (k r));
              dfs env' states' (depth + 1) crashes crashed
                (Step pid :: rev_choices)
          | Done _ | Crashed -> assert false);
          if crashes < max_crashes then begin
            let states' = Array.copy states in
            states'.(pid) <- Crashed;
            dfs (Env.copy env) states' (depth + 1) (crashes + 1)
              (pid :: crashed)
              (Crash pid :: rev_choices)
          end)
        live
  in
  (try dfs env0 (Array.map (fun p -> Running p) progs) 0 0 [] []
   with Found -> ());
  {
    explored = !explored;
    counterexample = !counterexample;
    exhausted_budget = !exhausted;
    pruned_states = 0;
    pruned_commutes = 0;
    pruned_source = 0;
  }

(* ------------------------------------------------------------------ *)
(* Systematic fault-box sweeping under online monitors                  *)
(* ------------------------------------------------------------------ *)

type fault_point = { victim : int; op : int; kind : Adversary.fault_kind }

type fault_schedule = { scheduler : string; faults : fault_point list }

let pp_fault_point ppf { victim; op; kind } =
  Format.fprintf ppf "p%d@op%d%s" victim op
    (match kind with
    | Adversary.Crash_stop -> ""
    | k -> ":" ^ Adversary.fault_kind_name k)

let pp_fault_schedule ppf { scheduler; faults } =
  Format.fprintf ppf "%s + [%s]" scheduler
    (String.concat "; "
       (List.map (Format.asprintf "%a" pp_fault_point) faults))

type found = {
  fault : fault_schedule;
  shrunk : fault_schedule;
  violation : Monitor.violation;  (** from the run of the shrunk schedule *)
  shrink_runs : int;
  replay : string;
}

type sweep_outcome = {
  runs : int;
  found : found option;
  deadlock : fault_schedule option;
  exhausted : bool;
}

let default_schedulers ~nprocs =
  [
    ("round-robin", fun () -> Adversary.round_robin ());
    ("priority-asc", fun () -> Adversary.priority (List.init nprocs Fun.id));
    ( "priority-desc",
      fun () -> Adversary.priority (List.rev (List.init nprocs Fun.id)) );
    ("random(1)", fun () -> Adversary.random ~seed:1);
    ("random(2)", fun () -> Adversary.random ~seed:2);
  ]

type verdict = Clean | Deadlocked | Violating of Monitor.violation

let run_fault ?(budget = 20_000) ~make ~monitors ~scheduler faults =
  let env, progs = make () in
  let specs =
    List.map
      (fun { victim; op; kind } ->
        {
          Adversary.kind;
          trigger = Adversary.Crash_at_local { pid = victim; step = op };
        })
      faults
  in
  let adversary = Adversary.with_faults (scheduler ()) specs in
  match
    Exec.run ~budget ~record_trace:true ~monitors:(monitors ()) ~env ~adversary
      progs
  with
  | r ->
      (* "All processes stuck" is a finding of the omission tier, not a
         crash of the checker: the run ended with nobody decided and
         nobody even runnable. *)
      let halted =
        Array.for_all
          (function
            | Exec.Crashed | Exec.Stuck -> true
            | Exec.Decided _ | Exec.Blocked -> false)
          r.Exec.outcomes
      in
      if halted && r.Exec.stuck <> [] then Deadlocked else Clean
  | exception Monitor.Violation v -> Violating v
  | exception Adversary.Deadlock -> Deadlocked

(* Delta-debugging: drop fault points, then weaken surviving fault kinds
   toward plain crash-stop, then pull the op-indices toward 0, then try
   collapsing the scheduler to round-robin. The scheduler is resolved
   once up front, every candidate — including the scheduler collapse —
   is validated through the same [attempt] path, and the last accepted
   (schedule, violation) pair is carried through, so the result is a
   genuine violating schedule with its own violation. *)
let shrink ?budget ~make ~monitors ~schedulers fault violation0 =
  let runs = ref 0 in
  let best = ref (fault, violation0) in
  let resolve name =
    match List.assoc_opt name schedulers with
    | Some s -> Some (name, s)
    | None -> None
  in
  let attempt (name, scheduler) faults =
    incr runs;
    match run_fault ?budget ~make ~monitors ~scheduler faults with
    | Violating v ->
        best := ({ scheduler = name; faults }, v);
        true
    | Clean | Deadlocked -> false
  in
  let sched =
    match resolve fault.scheduler with
    | Some s -> s
    | None ->
        invalid_arg
          (Printf.sprintf "Explore.shrink: scheduler %S is not in schedulers"
             fault.scheduler)
  in
  let violates faults = attempt sched faults in
  let rec drop_points faults =
    let rec try_drop i =
      if i >= List.length faults then faults
      else
        let candidate = List.filteri (fun j _ -> j <> i) faults in
        if violates candidate then drop_points candidate else try_drop (i + 1)
    in
    try_drop 0
  in
  let weaken_kinds faults =
    List.mapi
      (fun i p ->
        if p.kind = Adversary.Crash_stop then p
        else
          let weakened = { p with kind = Adversary.Crash_stop } in
          let candidate =
            List.mapi (fun j q -> if j = i then weakened else q) faults
          in
          if violates candidate then weakened else p)
      faults
  in
  let lower_indices faults =
    List.mapi
      (fun i p ->
        let rec lowest cand =
          if cand >= p.op then p
          else
            let candidate =
              List.mapi
                (fun j q -> if j = i then { p with op = cand } else q)
                faults
            in
            if violates candidate then { p with op = cand }
            else lowest (cand + 1)
        in
        lowest 0)
      faults
  in
  let faults = lower_indices (weaken_kinds (drop_points fault.faults)) in
  (if fault.scheduler <> "round-robin" then
     match resolve "round-robin" with
     | Some rr -> ignore (attempt rr faults : bool)
     | None -> ());
  let shrunk, violation = !best in
  (shrunk, violation, !runs)

let fault_sets ~nprocs ~kinds ~max_faults ~op_window =
  let kinds = match kinds with [] -> [ Adversary.Crash_stop ] | ks -> ks in
  let rec assignments = function
    | [] -> [ [] ]
    | pid :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun kind ->
            List.concat_map
              (fun op ->
                List.map (fun tl -> { victim = pid; op; kind } :: tl) tails)
              (List.init op_window Fun.id))
          kinds
  in
  let sizes = List.init (max 0 max_faults) (fun s -> s + 1) in
  [] (* the fault-free schedule first *)
  :: List.concat_map
       (fun size ->
         Combin.subsets ~n:nprocs ~size |> List.concat_map assignments)
       sizes

(* ------------------------------------------------------------------ *)
(* Sweep sharding hooks: the cell grid and the in-order merge           *)
(* ------------------------------------------------------------------ *)

(* The flattened scheduler × fault-set product, in sweep order. Like an
   exploration {!plan}, the grid is a pure function of the sweep
   parameters: a coordinator and its worker processes enumerate the
   same descriptors, so a cell index fully identifies one run. *)
type 'a sweep_plan = {
  sp_make : unit -> Env.t * 'a Prog.t array;
  sp_monitors : unit -> 'a Monitor.t list;
  sp_schedulers : (string * (unit -> Adversary.t)) list;
  sp_descriptors : (string * (unit -> Adversary.t) * fault_point list) array;
  sp_budget : int option;
  sp_meta : (string * string) list;
  sp_max_runs : int;
}

let sweep_plan ?(kinds = [ Adversary.Crash_stop ]) ?(max_faults = 1)
    ?(op_window = 6) ?(max_runs = 5_000) ?budget ?schedulers ?(meta = [])
    ~make ~monitors () =
  let env0, _ = make () in
  let nprocs = Env.nprocs env0 in
  let schedulers =
    match schedulers with
    | Some s -> s
    | None -> default_schedulers ~nprocs
  in
  let fault_box = fault_sets ~nprocs ~kinds ~max_faults ~op_window in
  (* Flatten the scheduler × fault-set product into run descriptors in
     sweep order; each descriptor is one independent run (fresh env,
     programs, monitors, adversary), so runs parallelise with no shared
     state and the merge reads verdicts back in sweep order —
     byte-identical outcomes at any job or worker count. *)
  let descriptors =
    List.concat_map
      (fun (sched_name, scheduler) ->
        List.map (fun faults -> (sched_name, scheduler, faults)) fault_box)
      schedulers
    |> Array.of_list
  in
  {
    sp_make = make;
    sp_monitors = monitors;
    sp_schedulers = schedulers;
    sp_descriptors = descriptors;
    sp_budget = budget;
    sp_meta = meta;
    sp_max_runs = max_runs;
  }

let sweep_cells p = min (Array.length p.sp_descriptors) p.sp_max_runs

let sweep_cell p i =
  let _, scheduler, faults = p.sp_descriptors.(i) in
  run_fault ?budget:p.sp_budget ~make:p.sp_make ~monitors:p.sp_monitors
    ~scheduler faults

let sweep_cell_schedule p i =
  let sched_name, _, faults = p.sp_descriptors.(i) in
  { scheduler = sched_name; faults }

(* In-order merge of per-cell verdicts. [verdict_of] may be backed by
   in-process results or by tags shipped from worker processes; a
   remote [Violating] carries no violation payload, so such callers map
   the tag back through {!sweep_cell} (deterministic) before merging —
   which is also why shrinking always happens here, locally, after the
   merge. *)
let sweep_merge ?metrics ?on_progress p ~verdict_of =
  let n_dispatch = sweep_cells p in
  let runs = ref 0 in
  let found = ref None in
  let deadlock = ref None in
  let exhausted = ref false in
  (try
     for i = 0 to n_dispatch - 1 do
       let verdict = verdict_of i in
       incr runs;
       note metrics "sweep.runs";
       heartbeat on_progress !runs;
       let sched_name, _, faults = p.sp_descriptors.(i) in
       match verdict with
       | Clean -> note metrics "sweep.verdict.clean"
       | Deadlocked ->
           note metrics "sweep.verdict.deadlocked";
           if !deadlock = None then
             deadlock := Some { scheduler = sched_name; faults }
       | Violating v ->
           note metrics "sweep.verdict.violating";
           let fault = { scheduler = sched_name; faults } in
           let shrunk, violation, shrink_runs =
             shrink ?budget:p.sp_budget ~make:p.sp_make ~monitors:p.sp_monitors
               ~schedulers:p.sp_schedulers fault v
           in
           note_by metrics "sweep.shrink_runs" shrink_runs;
           let replay =
             let t =
               match violation.Monitor.trace with
               | Some t -> t
               | None -> Trace.create () (* run_fault records traces *)
             in
             Trace.to_replay
               ~meta:
                 (p.sp_meta
                 @ [
                     ("monitor", violation.Monitor.monitor);
                     ("message", violation.Monitor.message);
                     ("step", string_of_int violation.Monitor.step);
                     ("pid", string_of_int violation.Monitor.pid);
                     ( "schedule",
                       Format.asprintf "%a" pp_fault_schedule shrunk );
                   ])
               t
           in
           found := Some { fault; shrunk; violation; shrink_runs; replay };
           raise Found
     done;
     if Array.length p.sp_descriptors > p.sp_max_runs then exhausted := true
   with Found -> ());
  {
    runs = !runs;
    found = !found;
    deadlock = !deadlock;
    exhausted = !exhausted;
  }

let sweep_faults ?kinds ?max_faults ?op_window ?max_runs ?budget ?schedulers
    ?meta ?metrics ?on_progress ?(jobs = 1) ?oversubscribe ~make ~monitors ()
    =
  let p =
    sweep_plan ?kinds ?max_faults ?op_window ?max_runs ?budget ?schedulers
      ?meta ~make ~monitors ()
  in
  let n_dispatch = sweep_cells p in
  let best = Atomic.make max_int in
  let rec note_violating i =
    let cur = Atomic.get best in
    if i < cur && not (Atomic.compare_and_set best cur i) then
      note_violating i
  in
  let run_one i =
    match sweep_cell p i with
    | Violating _ as v ->
        note_violating i;
        v
    | v -> v
  in
  let results =
    Par.run ~jobs ?oversubscribe
      ~skip:(fun i -> i > Atomic.get best)
      ~tasks:n_dispatch run_one
  in
  sweep_merge ?metrics ?on_progress p ~verdict_of:(fun i ->
      match results.(i) with
      | Some v -> v
      | None ->
          (* skipped past the first violation; only reachable if the
             merge still needs it, and re-running is deterministic *)
          sweep_cell p i)

let sweep_crashes ?max_crashes ?op_window ?max_runs ?budget ?schedulers ?meta
    ?metrics ?on_progress ?jobs ?oversubscribe ~make ~monitors () =
  sweep_faults
    ~kinds:[ Adversary.Crash_stop ]
    ?max_faults:max_crashes ?op_window ?max_runs ?budget ?schedulers ?meta
    ?metrics ?on_progress ?jobs ?oversubscribe ~make ~monitors ()

let replay ?budget ?metrics ~make ~monitors decisions =
  let env, progs = make () in
  let adversary = Adversary.of_replay decisions in
  match
    Exec.run ?budget ~record_trace:true ~monitors:(monitors ()) ?metrics ~env
      ~adversary progs
  with
  | r -> Ok r
  | exception Monitor.Violation v -> Error v
