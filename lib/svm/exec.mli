(** The scheduler: runs a set of programs to completion under an
    adversary.

    One call to {!run} is one execution of the distributed system. Each
    iteration the adversary picks a runnable process; the process then
    either executes exactly one atomic operation against the
    environment, or suffers the fault the adversary's plan dictates
    ({!Adversary.fault_now}): crash-stop, responsive omission (the
    operation hangs — the process is [Stuck]), crash-recovery (local
    program state reset to the initial program; shared memory survives),
    or a Byzantine value fault (the operation executes with a corrupted
    value). The run ends when every process has decided, crashed or got
    stuck, or when the step budget is exhausted — remaining live
    processes are then reported as [Blocked], which is how the
    experiments detect the permanent blocking the paper reasons about. *)

type 'a outcome =
  | Decided of 'a
  | Crashed
  | Blocked  (** still running when the budget ran out *)
  | Stuck
      (** halted on a hung operation (responsive omission), or poisoned
          by an undecodable Byzantine value — present in the system but
          never taking another step *)

type 'a result = {
  outcomes : 'a outcome array;
  op_counts : int array;
      (** operations executed per process, cumulative across restarts *)
  total_steps : int;
  crashed : int list;  (** pids, in crash order *)
  stuck : int list;  (** pids stuck by omission or poisoning, in order *)
  restarts : int list;
      (** pids restarted by crash-recovery faults, in order; a pid
          appears once per restart *)
  trace : Trace.t option;
}

val run :
  ?budget:int ->
  ?record_trace:bool ->
  ?monitors:'a Monitor.t list ->
  ?metrics:Metrics.t ->
  env:Env.t ->
  adversary:Adversary.t ->
  'a Prog.t array ->
  'a result
(** [run ~env ~adversary progs] executes [progs.(i)] as process [i].
    Default [budget] is [2_000_000] steps. The number of programs must
    equal [Env.nprocs env].

    With [metrics], the run records into the registry: per-kind op
    counters ([op.<kind>], [op.yield], [op.corrupted]), fault tallies
    ([fault.<kind>]), outcome tallies ([outcome.<name>]), per-process
    op and scheduling-step histograms ([proc.ops], [proc.steps]), the
    run-length histogram ([run.steps]) and, per touched object
    instance, access counts ([obj.ops.<fam>\[key\]]) and contention —
    distinct accessing pids — ([obj.pids.<fam>\[key\]], a max gauge).
    Everything is keyed on step counts, so two replays of one decision
    log snapshot identically; without [metrics] no per-op telemetry
    state is allocated at all.

    Each [monitors] entry is consulted after every executed operation,
    decision and fault; the first failed check aborts the run by raising
    {!Monitor.Violation}, carrying the live trace when [record_trace] is
    set. With [record_trace] the result's trace also holds the complete
    decision log ({!Trace.decisions}) — fault decisions included — from
    which {!Adversary.of_replay} reproduces the run bit-for-bit (a
    Byzantine value is a deterministic function of the schedule
    position, {!Adversary.byz_value}). Monitors are stateful: pass
    freshly built ones to every run. *)

val decided : 'a result -> 'a list
(** All decided values, in pid order. *)

val decided_count : 'a result -> int
val blocked : 'a result -> int list
val outcome_name : 'a outcome -> string
