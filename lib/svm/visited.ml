(* A domain-striped insert-if-absent table: fixed bucket array of
   immutable chains updated by CAS, fronted by a two-probe bloom filter
   packed into native ints. See the .mli for the linearizability
   argument; the load-order comment in [seen_or_add] is the one line the
   whole construction leans on. *)

type 'k t = {
  buckets : (int * 'k) list Atomic.t array;
  mask : int;
  bloom : int Atomic.t array;  (* 62 usable bits per word *)
  bloom_mask : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable bloom_fp : int;
}

let fresh_stats () = { hits = 0; misses = 0; bloom_fp = 0 }

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(buckets = 65536) () =
  let cap = pow2 (max 16 buckets) 16 in
  {
    buckets = Array.init cap (fun _ -> Atomic.make []);
    mask = cap - 1;
    (* A quarter as many words as buckets keeps the filter sparse for
       chain loads around one key per bucket. *)
    bloom = Array.init (cap / 4) (fun _ -> Atomic.make 0);
    bloom_mask = (cap / 4) - 1;
  }

(* Two probes derived from the one hash: the raw hash and a
   golden-ratio remix, each mapping to (word, bit-within-62). *)
let probe t i =
  let i = i land max_int in
  let w = (i lsr 6) land t.bloom_mask in
  let b = i mod 62 in
  (w, 1 lsl b)

let remix h = (h * 0x9e3779b9) lxor (h lsr 16)

let bloom_maybe t h =
  let w1, b1 = probe t h in
  let w2, b2 = probe t (remix h) in
  Atomic.get t.bloom.(w1) land b1 <> 0 && Atomic.get t.bloom.(w2) land b2 <> 0

let set_bit t w b =
  (* No fetch_or in stdlib [Atomic]: CAS-loop the OR in. *)
  let cell = t.bloom.(w) in
  let rec go () =
    let cur = Atomic.get cell in
    if cur land b = b then ()
    else if not (Atomic.compare_and_set cell cur (cur lor b)) then go ()
  in
  go ()

let bloom_add t h =
  let w1, b1 = probe t h in
  let w2, b2 = probe t (remix h) in
  set_bit t w1 b1;
  set_bit t w2 b2

let seen_or_add t ~hash key stats =
  let cell = t.buckets.(hash land t.mask) in
  (* Read the chain head BEFORE the bloom bits: an inserter sets its
     bits before its CAS publishes, so "bits clear" read after the head
     proves the key is absent from that head — the fast path needs no
     walk. The reverse order would race: bits could be set between our
     two reads by an insert whose CAS we then observe. *)
  let head = Atomic.get cell in
  let mem chain = List.exists (fun (h, k) -> h = hash && k = key) chain in
  let present =
    if bloom_maybe t hash then begin
      let p = mem head in
      if not p then stats.bloom_fp <- stats.bloom_fp + 1;
      p
    end
    else false
  in
  if present then begin
    stats.hits <- stats.hits + 1;
    true
  end
  else begin
    bloom_add t hash;
    (* [prev] is always a chain proven not to contain [key] — [head] by
       the walk (or the bloom proof above), later values by the re-walk
       after a lost CAS. That re-walk is what makes concurrent double
       insertion impossible. *)
    let rec insert prev =
      if Atomic.compare_and_set cell prev ((hash, key) :: prev) then begin
        stats.misses <- stats.misses + 1;
        false
      end
      else
        let cur = Atomic.get cell in
        if mem cur then begin
          stats.hits <- stats.hits + 1;
          true
        end
        else insert cur
    in
    insert head
  end

let distinct t =
  Array.fold_left (fun n cell -> n + List.length (Atomic.get cell)) 0 t.buckets

(* A concurrent hash-consing table built on the same bucket-CAS idiom:
   the first worker to publish a key names it; everyone else adopts
   that name. Within one table, id equality is exactly key equality —
   the numeric values depend on scheduling, so they must never be
   compared across tables or leak into deterministic output. *)
module Intern = struct
  type 'k t = {
    ibuckets : (int * 'k * int) list Atomic.t array;
    imask : int;
    inext : int Atomic.t;
  }

  let create ?(buckets = 65536) () =
    let cap = pow2 (max 16 buckets) 16 in
    {
      ibuckets = Array.init cap (fun _ -> Atomic.make []);
      imask = cap - 1;
      inext = Atomic.make 1 (* 0 is reserved for the caller's root id *);
    }

  let find hash key chain =
    List.find_map
      (fun (h, k, i) -> if h = hash && k = key then Some i else None)
      chain

  let id t ~hash key =
    let cell = t.ibuckets.(hash land t.imask) in
    let head = Atomic.get cell in
    match find hash key head with
    | Some i -> i
    | None ->
        (* Reserve a fresh id, then race to publish it. Losing the CAS
           to an insert of the same key means adopting the winner's id;
           the reserved one is simply never used (ids need not be
           dense). The re-walk after a lost CAS is what makes two live
           ids for one key impossible. *)
        let fresh = Atomic.fetch_and_add t.inext 1 in
        let rec insert prev =
          if Atomic.compare_and_set cell prev ((hash, key, fresh) :: prev)
          then fresh
          else
            let cur = Atomic.get cell in
            match find hash key cur with Some i -> i | None -> insert cur
        in
        insert head

  let count t = Atomic.get t.inext - 1
end
