type reason =
  | Q_digest of { expected : string; actual : string }
  | Q_malformed of string

type quarantine = { q_file : string; q_offset : int; q_reason : reason }

let pp_quarantine ppf q =
  Format.fprintf ppf "%s @@ byte %d: %s" q.q_file q.q_offset
    (match q.q_reason with
    | Q_digest { expected; actual } ->
        Printf.sprintf "digest mismatch (recorded %s, content hashes to %s)"
          expected actual
    | Q_malformed m -> Printf.sprintf "malformed framing (%s)" m)

type chaos =
  | Kill_at_append of int
  | Torn_at_append of int
  | Bitflip_after_cement

(* An entry is (content address, byte offset, byte length); cemented
   segments keep theirs in offset order, the tail in append order. *)
type entry = { e_digest : string; e_off : int; e_len : int }

type location = Cemented of int | In_tail

type t = {
  dir : string;
  seg_dir : string;
  fsync : bool;
  index : (string, location) Hashtbl.t;
  mutable segs : (int * entry list) list;  (** ascending segment id *)
  mutable tail_oc : out_channel;
  mutable tail_len : int;
  mutable tail_entries : entry list;  (** newest first *)
  mutable quarantine : quarantine list;  (** newest first *)
  mutable appends : int;  (** lifetime appends, for the chaos hooks *)
  mutable chaos : chaos option;
}

let tail_file t = Filename.concat t.dir "tail.seg"
let seg_name id = Printf.sprintf "seg-%08d.cor" id
let idx_name id = Printf.sprintf "seg-%08d.idx" id
let seg_file t id = Filename.concat t.seg_dir (seg_name id)
let idx_file t id = Filename.concat t.seg_dir (idx_name id)

let mkdir_p d =
  if not (Sys.file_exists d) then Unix.mkdir d 0o755

(* Directory fsync: the rename/create is not durable until the
   directory entry is. Some filesystems refuse fsync on a directory fd;
   that is a capability gap, not a corruption, so it is swallowed. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let fsync_oc oc = Unix.fsync (Unix.descr_of_out_channel oc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_slice path ~off ~len =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      if in_channel_length ic < off + len then None
      else begin
        seek_in ic off;
        Some (really_input_string ic len)
      end)

let sigkill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* ------------------------------------------------------------------ *)
(* Segment indexes                                                     *)
(* ------------------------------------------------------------------ *)

(* idx files are an accelerator and a resync aid, never the truth: the
   segment's own bytes are re-verified no matter what the idx says, and
   a missing or unreadable idx is rebuilt from the segment. *)

let write_idx ~seg_dir ~fsync id entries =
  let tmp = Filename.concat seg_dir (idx_name id ^ ".tmp") in
  let oc = open_out_bin tmp in
  output_string oc (Printf.sprintf "idx 1 %d\n" (List.length entries));
  List.iter
    (fun e ->
      output_string oc (Printf.sprintf "%d %d %s\n" e.e_off e.e_len e.e_digest))
    entries;
  flush oc;
  if fsync then fsync_oc oc;
  close_out oc;
  Sys.rename tmp (Filename.concat seg_dir (idx_name id));
  if fsync then fsync_dir seg_dir

let load_idx ~seg_dir id =
  let path = Filename.concat seg_dir (idx_name id) in
  if not (Sys.file_exists path) then None
  else
    let lines = String.split_on_char '\n' (read_file path) in
    match lines with
    | header :: rows -> (
        match String.split_on_char ' ' header with
        | [ "idx"; "1"; n ] -> (
            match int_of_string_opt n with
            | None -> None
            | Some n ->
                let parsed =
                  List.filter_map
                    (fun row ->
                      match String.split_on_char ' ' row with
                      | [ off; len; digest ] -> (
                          match
                            (int_of_string_opt off, int_of_string_opt len)
                          with
                          | Some off, Some len ->
                              Some { e_digest = digest; e_off = off; e_len = len }
                          | _ -> None)
                      | _ -> None)
                    rows
                in
                if List.length parsed = n then Some parsed else None)
        | _ -> None)
    | [] -> None

(* ------------------------------------------------------------------ *)
(* Opening: verify cemented segments, recover the tail                 *)
(* ------------------------------------------------------------------ *)

(* Walk one cemented segment, re-verifying every record. Framing damage
   loses synchronization from the corrupt point on; the idx (when it
   has a row past that point) restores it, so one flipped length digit
   does not swallow the rest of the segment. *)
let scan_segment ~file ~idx buf =
  let len = String.length buf in
  let entries = ref [] and quarantine = ref [] in
  let resync pos =
    match idx with
    | None -> None
    | Some rows ->
        List.find_map
          (fun e -> if e.e_off > pos then Some e.e_off else None)
          rows
  in
  let quarantine_gap pos upto reason =
    quarantine := { q_file = file; q_offset = pos; q_reason = reason } :: !quarantine;
    upto
  in
  let rec go pos =
    if pos < len then
      match Record.parse_at buf pos with
      | Ok (r, n) ->
          entries :=
            { e_digest = Record.digest r; e_off = pos; e_len = n } :: !entries;
          go (pos + n)
      | Error (Record.Digest_mismatch { expected; actual }) -> (
          (* Framing intact: the structural extent is knowable, so only
             this record is lost. *)
          match Record.skip_at buf pos with
          | Ok n -> go (quarantine_gap pos (pos + n) (Q_digest { expected; actual }))
          | Error _ ->
              ignore
                (quarantine_gap pos len
                   (Q_digest { expected; actual })))
      | Error (Record.Malformed m) -> (
          match resync pos with
          | Some next when next > pos -> go (quarantine_gap pos next (Q_malformed m))
          | _ ->
              ignore
                (quarantine_gap pos len
                   (Q_malformed (m ^ "; remainder of segment unreadable"))))
      | Error Record.Truncated ->
          ignore
            (quarantine_gap pos len
               (Q_malformed "segment ends mid-record"))
  in
  go 0;
  (List.rev !entries, List.rev !quarantine)

(* The tail is mutable and the only file a crash can tear: recovery is
   the journal rule — a record exists only once its complete, valid
   bytes do. Truncate to the last good record boundary. *)
let scan_tail buf =
  let len = String.length buf in
  let entries = ref [] in
  let rec go pos =
    if pos >= len then pos
    else
      match Record.parse_at buf pos with
      | Ok (r, n) ->
          entries :=
            { e_digest = Record.digest r; e_off = pos; e_len = n } :: !entries;
          go (pos + n)
      | Error _ -> pos
  in
  let valid = go 0 in
  (List.rev !entries, valid)

let list_seg_ids seg_dir =
  if not (Sys.file_exists seg_dir) then []
  else
    Sys.readdir seg_dir |> Array.to_list
    |> List.filter_map (fun f ->
           Scanf.sscanf_opt f "seg-%08d.cor%!" (fun id -> id))
    |> List.sort compare

let open_ ?(log = Svm.Log.null) ?(fsync = true) ?chaos dir =
  match
    mkdir_p dir;
    mkdir_p (Filename.concat dir "segments")
  with
  | exception Unix.Unix_error (e, _, p) ->
      Error (Printf.sprintf "cannot create %s: %s" p (Unix.error_message e))
  | () ->
      let seg_dir = Filename.concat dir "segments" in
      (* A crash mid-compaction can leave its temp file behind; it was
         never renamed, so it is not part of the corpus. *)
      (try Sys.remove (Filename.concat seg_dir "compact.tmp")
       with Sys_error _ -> ());
      let index = Hashtbl.create 256 in
      let quarantine = ref [] in
      let segs =
        List.map
          (fun id ->
            let file = Filename.concat "segments" (seg_name id) in
            let buf = read_file (Filename.concat dir file) in
            let idx = load_idx ~seg_dir id in
            let entries, q = scan_segment ~file ~idx buf in
            quarantine := !quarantine @ q;
            (* A crash between the segment rename and its idx write
               leaves an unindexed segment: reindex it now. *)
            if idx = None && q = [] then write_idx ~seg_dir ~fsync id entries;
            List.iter
              (fun e ->
                if not (Hashtbl.mem index e.e_digest) then
                  Hashtbl.replace index e.e_digest (Cemented id))
              entries;
            (id, entries))
          (list_seg_ids seg_dir)
      in
      (* Tail recovery: truncate to the last complete valid record. *)
      let tail_path = Filename.concat dir "tail.seg" in
      let tail_entries, valid =
        if Sys.file_exists tail_path then scan_tail (read_file tail_path)
        else ([], 0)
      in
      if Sys.file_exists tail_path then begin
        let st = Unix.stat tail_path in
        if st.Unix.st_size > valid then begin
          Svm.Log.warnf log "torn tail: truncating %s from %d to %d bytes"
            tail_path st.Unix.st_size valid;
          let fd = Unix.openfile tail_path [ Unix.O_WRONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () -> Unix.ftruncate fd valid)
        end
      end;
      List.iter
        (fun q ->
          Svm.Log.warnf log "quarantined record in %s at offset %d" q.q_file
            q.q_offset)
        (List.rev !quarantine);
      let tail_oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 tail_path
      in
      List.iter
        (fun e ->
          if not (Hashtbl.mem index e.e_digest) then
            Hashtbl.replace index e.e_digest In_tail)
        tail_entries;
      Ok
        {
          dir;
          seg_dir;
          fsync;
          index;
          segs;
          tail_oc;
          tail_len = valid;
          tail_entries = List.rev tail_entries;
          quarantine = List.rev !quarantine;
          appends = 0;
          chaos;
        }

(* ------------------------------------------------------------------ *)
(* Appends and cementing                                               *)
(* ------------------------------------------------------------------ *)

let mem t d = Hashtbl.mem t.index d

let add t r =
  let d = Record.digest r in
  if Hashtbl.mem t.index d then `Duplicate d
  else begin
    let bytes = Record.to_bytes r in
    t.appends <- t.appends + 1;
    (match t.chaos with
    | Some (Torn_at_append n) when t.appends = n ->
        (* Die mid-append: half the record reaches the file, the rest
           never will — exactly the torn tail reopen must cut away. *)
        output_string t.tail_oc
          (String.sub bytes 0 (max 1 (String.length bytes / 2)));
        flush t.tail_oc;
        sigkill_self ()
    | _ -> ());
    output_string t.tail_oc bytes;
    flush t.tail_oc;
    t.tail_entries <-
      t.tail_entries
      @ [ { e_digest = d; e_off = t.tail_len; e_len = String.length bytes } ];
    t.tail_len <- t.tail_len + String.length bytes;
    Hashtbl.replace t.index d In_tail;
    (match t.chaos with
    | Some (Kill_at_append n) when t.appends = n -> sigkill_self ()
    | _ -> ());
    `Added d
  end

let bitflip_in t id =
  (* Flip one bit of the last payload byte of the first record: framing
     survives, the content no longer hashes to its address. *)
  match List.assoc_opt id t.segs with
  | Some (e :: _) when e.e_len >= 2 ->
      let path = seg_file t id in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let pos = e.e_off + e.e_len - 2 in
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          let b = Bytes.create 1 in
          if Unix.read fd b 0 1 = 1 then begin
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
            ignore (Unix.lseek fd pos Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1)
          end)
  | _ -> ()

let cement t =
  if t.tail_entries <> [] then begin
    flush t.tail_oc;
    if t.fsync then fsync_oc t.tail_oc;
    close_out t.tail_oc;
    let id = 1 + List.fold_left (fun acc (i, _) -> max acc i) 0 t.segs in
    (* write → fsync file (above) → rename → fsync directory: after the
       rename is durable the segment is immutable; the idx write below
       is recoverable (reindexed from the segment) if we die first. *)
    Sys.rename (tail_file t) (seg_file t id);
    if t.fsync then begin
      fsync_dir t.seg_dir;
      fsync_dir t.dir
    end;
    let entries = t.tail_entries in
    write_idx ~seg_dir:t.seg_dir ~fsync:t.fsync id entries;
    List.iter (fun e -> Hashtbl.replace t.index e.e_digest (Cemented id)) entries;
    t.segs <- t.segs @ [ (id, entries) ];
    t.tail_entries <- [];
    t.tail_len <- 0;
    t.tail_oc <-
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (tail_file t);
    match t.chaos with
    | Some Bitflip_after_cement ->
        t.chaos <- None;
        bitflip_in t id
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Verified reads                                                      *)
(* ------------------------------------------------------------------ *)

let count t = Hashtbl.length t.index
let tail_count t = List.length t.tail_entries
let segments t = List.length t.segs
let quarantined t = t.quarantine

let entry_of t d =
  match Hashtbl.find_opt t.index d with
  | None -> None
  | Some (Cemented id) ->
      Option.bind (List.assoc_opt id t.segs) (fun entries ->
          List.find_opt (fun e -> e.e_digest = d) entries)
      |> Option.map (fun e -> (Filename.concat "segments" (seg_name id), e))
  | Some In_tail ->
      List.find_opt (fun e -> e.e_digest = d) t.tail_entries
      |> Option.map (fun e -> ("tail.seg", e))

let quarantine_now t ~file ~e reason =
  t.quarantine <- t.quarantine @ [ { q_file = file; q_offset = e.e_off; q_reason = reason } ];
  Hashtbl.remove t.index e.e_digest

(* Verify a record freshly off the disk; corruption discovered here —
   even in records that verified at open time — quarantines the record
   rather than surfacing garbage or an exception. *)
let read_verified t ~file e =
  (* The tail out_channel is flushed on every append, so the file is
     current for readers. *)
  match read_slice (Filename.concat t.dir file) ~off:e.e_off ~len:e.e_len with
  | None ->
      quarantine_now t ~file ~e (Q_malformed "record extends past end of file");
      None
  | Some buf -> (
      match Record.parse_at buf 0 with
      | Ok (r, _) when Record.digest r = e.e_digest -> Some r
      | Ok _ ->
          quarantine_now t ~file ~e
            (Q_malformed "record bytes changed identity");
          None
      | Error (Record.Digest_mismatch { expected; actual }) ->
          quarantine_now t ~file ~e (Q_digest { expected; actual });
          None
      | Error (Record.Malformed m) ->
          quarantine_now t ~file ~e (Q_malformed m);
          None
      | Error Record.Truncated ->
          quarantine_now t ~file ~e (Q_malformed "record truncated");
          None)

let find t d =
  match entry_of t d with
  | None -> None
  | Some (file, e) -> read_verified t ~file e

let iter t f =
  List.iter
    (fun (id, entries) ->
      let file = Filename.concat "segments" (seg_name id) in
      List.iter
        (fun e ->
          if Hashtbl.find_opt t.index e.e_digest = Some (Cemented id) then
            match read_verified t ~file e with
            | Some r -> f ~digest:e.e_digest r
            | None -> ())
        entries)
    t.segs;
  List.iter
    (fun e ->
      if Hashtbl.find_opt t.index e.e_digest = Some In_tail then
        match read_verified t ~file:"tail.seg" e with
        | Some r -> f ~digest:e.e_digest r
        | None -> ())
    t.tail_entries

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun ~digest r -> acc := f !acc ~digest r);
  !acc

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

let compact t =
  cement t;
  if t.quarantine <> [] then
    Error
      (Printf.sprintf
         "%d quarantined record(s); compaction refuses to rewrite a corpus it \
          cannot fully verify"
         (List.length t.quarantine))
  else if List.length t.segs <= 1 then
    Ok (match t.segs with [] -> 0 | (_, es) :: _ -> List.length es)
  else begin
    (* Gather the input as the exact bytes of every live record, in
       storage order, deduplicated the same way the index is. *)
    let buf = Buffer.create 4096 in
    let entries = ref [] in
    List.iter
      (fun (id, es) ->
        let bytes = read_file (seg_file t id) in
        List.iter
          (fun e ->
            if Hashtbl.find_opt t.index e.e_digest = Some (Cemented id) then begin
              entries :=
                { e with e_off = Buffer.length buf } :: !entries;
              Buffer.add_string buf (String.sub bytes e.e_off e.e_len)
            end)
          es)
      t.segs;
    let entries = List.rev !entries in
    let input = Buffer.contents buf in
    let id = 1 + List.fold_left (fun acc (i, _) -> max acc i) 0 t.segs in
    let tmp = Filename.concat t.seg_dir "compact.tmp" in
    let oc = open_out_bin tmp in
    output_string oc input;
    flush oc;
    if t.fsync then fsync_oc oc;
    close_out oc;
    (* Byte-identity check against the input, read back from disk: the
       swap happens only once the new segment provably carries exactly
       the records the old ones did. *)
    let written = read_file tmp in
    if written <> input then begin
      (try Sys.remove tmp with Sys_error _ -> ());
      Error "compaction output does not match its input byte-for-byte; \
             input segments left untouched"
    end
    else begin
      let old = t.segs in
      Sys.rename tmp (seg_file t id);
      if t.fsync then fsync_dir t.seg_dir;
      write_idx ~seg_dir:t.seg_dir ~fsync:t.fsync id entries;
      List.iter
        (fun e -> Hashtbl.replace t.index e.e_digest (Cemented id))
        entries;
      t.segs <- [ (id, entries) ];
      List.iter
        (fun (old_id, _) ->
          (try Sys.remove (seg_file t old_id) with Sys_error _ -> ());
          try Sys.remove (idx_file t old_id) with Sys_error _ -> ())
        old;
      if t.fsync then fsync_dir t.seg_dir;
      Ok (List.length entries)
    end
  end

let close t =
  flush t.tail_oc;
  close_out t.tail_oc
