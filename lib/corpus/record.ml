type kind = Finding | Metrics | State

let kind_name = function
  | Finding -> "finding"
  | Metrics -> "metrics"
  | State -> "state"

let kind_of_name = function
  | "finding" -> Some Finding
  | "metrics" -> Some Metrics
  | "state" -> Some State
  | _ -> None

type t = { kind : kind; meta : (string * string) list; payload : string }

let make ~kind ~meta ~payload =
  List.iter
    (fun (k, v) ->
      if k = "" then invalid_arg "Corpus.Record.make: empty metadata key";
      String.iter
        (fun c ->
          if c = ' ' || c = '\n' then
            invalid_arg
              (Printf.sprintf "Corpus.Record.make: metadata key %S" k))
        k;
      if String.contains v '\n' then
        invalid_arg
          (Printf.sprintf "Corpus.Record.make: newline in value of %S" k))
    meta;
  let meta = List.sort (fun (a, _) (b, _) -> String.compare a b) meta in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  (match dup meta with
  | Some k ->
      invalid_arg (Printf.sprintf "Corpus.Record.make: duplicate key %S" k)
  | None -> ());
  { kind; meta; payload }

let meta_find t key = List.assoc_opt key t.meta

(* One renderer serves both the content address (digest field blanked)
   and the on-disk framing (digest field filled): what is hashed is
   exactly what is stored. *)
let render ~digest t =
  let b = Buffer.create (String.length t.payload + 128) in
  Buffer.add_string b
    (Printf.sprintf "rec %s %s %d %d\n" (kind_name t.kind) digest
       (List.length t.meta)
       (String.length t.payload));
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s %s\n" k v))
    t.meta;
  Buffer.add_string b t.payload;
  Buffer.add_char b '\n';
  Buffer.contents b

let digest t = Digest.to_hex (Digest.string (render ~digest:"-" t))
let to_bytes t = render ~digest:(digest t) t

type parse_error =
  | Truncated
  | Malformed of string
  | Digest_mismatch of { expected : string; actual : string }

let pp_parse_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated record (torn append)"
  | Malformed m -> Format.fprintf ppf "malformed record: %s" m
  | Digest_mismatch { expected; actual } ->
      Format.fprintf ppf "digest mismatch: recorded %s, content hashes to %s"
        expected actual

(* [line_at buf off] — the bytes up to the next newline, or [None] when
   the buffer ends first (a torn write). *)
let line_at buf off =
  if off >= String.length buf then None
  else
    match String.index_from_opt buf off '\n' with
    | None -> None
    | Some nl -> Some (String.sub buf off (nl - off), nl + 1)

(* Structural pass: framing only, no content verification. Returns the
   record as written, its claimed address, and its byte extent. *)
let parse_structure buf off =
  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
  let* header, body_off =
    match line_at buf off with
    | None -> Error Truncated
    | Some hl -> Ok hl
  in
  let* kind, claimed, nmeta, plen =
    match String.split_on_char ' ' header with
    | [ "rec"; kname; claimed; nmeta; plen ] -> (
        match
          (kind_of_name kname, int_of_string_opt nmeta, int_of_string_opt plen)
        with
        | Some kind, Some nmeta, Some plen when nmeta >= 0 && plen >= 0 ->
            Ok (kind, claimed, nmeta, plen)
        | _ -> Error (Malformed ("unreadable header: " ^ header)))
    | _ ->
        if String.length header > 3 && String.sub header 0 4 = "rec " then
          Error (Malformed ("unreadable header: " ^ header))
        else Error (Malformed "not a record header")
  in
  let rec metas acc n pos =
    if n = 0 then Ok (List.rev acc, pos)
    else
      match line_at buf pos with
      | None -> Error Truncated
      | Some (line, next) -> (
          match String.index_opt line ' ' with
          | None -> Error (Malformed ("unreadable metadata line: " ^ line))
          | Some sp ->
              let k = String.sub line 0 sp in
              let v =
                String.sub line (sp + 1) (String.length line - sp - 1)
              in
              metas ((k, v) :: acc) (n - 1) next)
  in
  let* meta, payload_off = metas [] nmeta body_off in
  let* payload =
    if payload_off + plen + 1 > String.length buf then Error Truncated
    else if buf.[payload_off + plen] <> '\n' then
      Error (Malformed "payload is not newline-terminated at its stated length")
    else Ok (String.sub buf payload_off plen)
  in
  let* t =
    match make ~kind ~meta ~payload with
    | t -> Ok t
    | exception Invalid_argument m -> Error (Malformed m)
  in
  Ok (t, claimed, payload_off + plen + 1 - off)

let skip_at buf off =
  match parse_structure buf off with
  | Ok (_, _, len) -> Ok len
  | Error e -> Error e

let parse_at buf off =
  match parse_structure buf off with
  | Error e -> Error e
  | Ok (t, claimed, len) ->
      let actual = digest t in
      if actual <> claimed then
        Error (Digest_mismatch { expected = claimed; actual })
      else Ok (t, len)
