(** A crash-safe, content-addressed corpus of replay artifacts,
    modeled on cemented block stores: an append-only {e tail} file plus
    immutable {e cemented} segment files with indexes.

    Layout under the corpus directory:

    {v
    tail.seg                    appends land here, flushed per record
    segments/seg-00000001.cor   immutable cemented segments
    segments/seg-00000001.idx   offset/length/digest index (rebuildable)
    v}

    Durability contract:
    - {e Appends} ({!add}) are complete framed records, flushed to the
      OS but not fsynced: a crash loses at most the uncemented tail,
      and a torn final append is truncated away on reopen (the same
      "a record exists only once its terminator does" rule as
      [Dist.Journal]).
    - {e Cementing} ({!cement}) makes the tail immutable with the full
      atomic discipline — fsync the tail file, rename it into
      [segments/], fsync the directories, then write the index through
      a fsynced temp-file rename. A crash at any instant leaves either
      the old state or the new state; a segment whose index write was
      interrupted is reindexed from its own bytes on the next open.
    - {e Reads} re-verify every record's content address. A cemented
      record whose bytes no longer hash to their recorded address is
      {e quarantined} — reported as typed data, never a crash, and
      excluded from the index and from dedup.
    - {e Compaction} ({!compact}) merges all cemented segments into
      one, byte-identity-checked against its input before the old
      segments are dropped; it refuses to run while any record is
      quarantined. *)

type t

type reason =
  | Q_digest of { expected : string; actual : string }
      (** framing intact, content does not hash to its address *)
  | Q_malformed of string  (** framing destroyed from this offset on *)

type quarantine = {
  q_file : string;  (** segment file, relative to the corpus dir *)
  q_offset : int;  (** byte offset of the corrupt record *)
  q_reason : reason;
}

val pp_quarantine : Format.formatter -> quarantine -> unit

(** Crash/corruption injection for the robustness tests — armed at
    {!open_}, fires once. *)
type chaos =
  | Kill_at_append of int
      (** SIGKILL this process immediately after the [n]-th append of
          this store's lifetime returns (record complete, uncemented) *)
  | Torn_at_append of int
      (** write only a prefix of the [n]-th appended record, flush the
          torn bytes, then SIGKILL this process *)
  | Bitflip_after_cement
      (** after the next successful cement, flip one payload bit inside
          the newly cemented segment file *)

val open_ :
  ?log:Svm.Log.t -> ?fsync:bool -> ?chaos:chaos -> string -> (t, string) result
(** Open (creating if needed) the corpus at a directory. Recovery runs
    here: the tail is truncated to its last complete valid record, and
    every cemented record is re-verified — corrupt ones land in
    {!quarantined}. Recovery actions (tail truncation, quarantines) are
    reported on [log] at [Warn]. [fsync] (default [true]) controls
    whether cement syncs reach the disk or only the OS. *)

val add : t -> Record.t -> [ `Added of string | `Duplicate of string ]
(** Append a record to the tail unless its content address is already
    present (cemented or in the tail); returns the address either way. *)

val mem : t -> string -> bool
(** Is this content address present (and not quarantined)? *)

val find : t -> string -> Record.t option
(** Re-read a record by content address, re-verifying it from disk.
    [None] if absent — or if the bytes on disk no longer verify, in
    which case the record is quarantined and dropped from the index. *)

val cement : t -> unit
(** Seal the tail into an immutable segment (no-op on an empty tail). *)

val count : t -> int
(** Valid records: cemented + tail, duplicates counted once. *)

val tail_count : t -> int
(** Records in the uncemented tail — what a crash right now may lose. *)

val segments : t -> int
(** Number of cemented segment files. *)

val quarantined : t -> quarantine list
(** Corrupt cemented records found so far, oldest first. *)

val iter : t -> (digest:string -> Record.t -> unit) -> unit
(** Every valid record in storage order (cemented segments in id order,
    offset order within a segment, then the tail). Records are re-read
    and re-verified from disk; a record that fails verification here is
    quarantined and skipped. *)

val fold : t -> init:'a -> f:('a -> digest:string -> Record.t -> 'a) -> 'a

val compact : t -> (int, string) result
(** Merge all cemented segments into a single fresh segment; the tail
    is cemented first. Every input record is re-read, and the output
    bytes are verified to be the byte-identical concatenation of the
    input records before the old segments are removed. Returns the
    number of records in the compacted segment. Refuses ([Error]) when
    any record is quarantined. *)

val close : t -> unit
(** Flush and close the tail (no cement implied). *)
