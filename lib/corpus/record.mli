(** Corpus records: the unit of content-addressed storage.

    A record is a kind tag, a small sorted metadata map and an opaque
    payload (typically the bytes of a replay artifact, a metrics
    snapshot, or a soak checkpoint). Its {e content address} is a digest
    over a canonical rendering of all three, so two records with the
    same kind, metadata and payload have the same address no matter
    when, where or how often they were produced — which is what makes
    corpus-level dedup of findings across runs sound.

    The canonical rendering {e is} the on-disk framing (with the digest
    field blanked), so there is exactly one serializer: what is hashed
    is what is stored, and a verifier recomputes the address from the
    stored bytes alone. *)

type kind =
  | Finding  (** a shrunk violating schedule's replay artifact *)
  | Metrics  (** a metrics snapshot *)
  | State  (** a soak checkpoint: scenario, seed, next schedule index *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type t = private {
  kind : kind;
  meta : (string * string) list;  (** sorted by key; newline-free *)
  payload : string;  (** opaque bytes *)
}

val make : kind:kind -> meta:(string * string) list -> payload:string -> t
(** Canonicalize: sorts [meta] by key. Raises [Invalid_argument] if a
    key is empty or contains a space or newline, if a value contains a
    newline, or if two entries share a key — metadata must render
    unambiguously into the line-oriented framing. *)

val digest : t -> string
(** The content address: an MD5 hex digest of the canonical rendering
    (kind, sorted metadata, payload sizes and bytes). *)

val meta_find : t -> string -> string option

(** {1 Framing}

    On-disk layout of one record, all fields length-prefixed by the
    header line so payloads are arbitrary bytes:

    {v
    rec <kind> <digest> <nmeta> <payload_len>\n
    <key> <value>\n            (nmeta times)
    <payload bytes>\n
    v} *)

val to_bytes : t -> string
(** The record framed for disk, digest field filled in. *)

type parse_error =
  | Truncated  (** the buffer ends mid-record: a torn append *)
  | Malformed of string  (** structurally broken framing *)
  | Digest_mismatch of { expected : string; actual : string }
      (** well-formed framing whose recorded address does not match the
          recomputed one: the bytes changed after they were written *)

val pp_parse_error : Format.formatter -> parse_error -> unit

val parse_at : string -> int -> (t * int, parse_error) result
(** [parse_at buf off] parses one framed record starting at [off];
    returns the record and the total number of bytes it occupies. The
    record's digest is re-verified against its recorded address —
    [Digest_mismatch] means the framing is intact but the content is
    not the content that was addressed. *)

val skip_at : string -> int -> (int, parse_error) result
(** Structural extent of the record at [off] without content
    verification — how far a scanner can safely skip past a record
    whose digest does not verify. *)
