(** The worker side of the protocol: a blocking serve loop over a pair
    of file descriptors (the coordinator wires a socketpair end to the
    worker's stdin and stdout, so [asmsim work] passes exactly those).

    A worker is stateless between shards and owns nothing durable: it
    builds its plan from the [Hello] job, computes whatever index
    ranges it is assigned, and ships plain-data results. Killing one at
    any instant loses nothing but the in-flight shard, which the
    coordinator reassigns — that is the whole point. *)

type instance =
  | Sweep_instance of Svm.Univ.t Svm.Explore.sweep_plan
  | Explore_instance of Svm.Univ.t Svm.Explore.plan

val cells_of_instance : instance -> int
(** Dispatch units in the instance's plan — what [Hello_ok] reports. *)

val compute_shard :
  instance -> lo:int -> hi:int -> tick:(int -> unit) -> Svm.Json.t
(** Compute the wire payload for cells [lo, hi): the verdict-tag string
    of a sweep or the summary list of an explore. Transport-free —
    [tick completed] fires every few cells so the caller can emit
    progress heartbeats and poll its own control channel (it may raise
    to abandon the shard). Shared by the socketpair serve loop below
    and the TCP {!Client}. *)

val serve :
  lookup:(Proto.job -> (instance, string) result) ->
  Unix.file_descr ->
  Unix.file_descr ->
  int
(** [serve ~lookup in_fd out_fd] speaks the protocol until shutdown and
    returns the process exit code: 0 on a clean [Shutdown] (or the
    coordinator closing the connection — an orphaned worker must die,
    not linger), 2 on a protocol violation or a job that [lookup]
    rejects, 3 on an internal error. [lookup] is injected so this
    library needs no knowledge of the scenario registry (the CLI passes
    the experiments-layer resolver).

    Long shards stay observable: every few cells the worker emits a
    [Progress] heartbeat and polls for control frames, answering [Ping]
    and honouring [Shutdown] mid-shard. *)
