(** The connecting side of the network service: remote workers that
    pull shards over TCP, and submitting clients that ship a job and
    merge the shard stream locally.

    Both share one bounded-reconnect discipline: dial with a deadline,
    handshake, serve until the link drops, then back off with full
    jitter ({!Policy.reconnect_delay}) and reconnect. Consecutive
    failures to {e establish} a session are bounded by
    [config.max_failures]; a typed handshake rejection is permanent and
    never retried. A live session resets the failure budget, so a
    chaos-ridden but reachable server is reconnected to indefinitely —
    which is exactly what the chaos harness exercises. *)

type config = {
  fingerprint : string;  (** our registry fingerprint, sent in the hello *)
  chaos : Net.chaos option;  (** worker-side write-path fault injection *)
  max_failures : int;  (** consecutive failed connection attempts allowed *)
  backoff_base : float;
  backoff_cap : float;
  dial_timeout : float;
  read_timeout : float;
      (** per-frame read deadline; the server's heartbeats keep an
          idle, healthy link well under it *)
  log : Svm.Log.t;
      (** leveled diagnostics: link losses and retries at [Warn], job
          lifecycle at [Info], per-shard work at [Debug] *)
  metrics : Svm.Metrics.t option;
      (** worker-side counters (shards, cells, chaos cuts, link losses);
          a worker with a registry pushes its full snapshot to the
          server inside every heartbeat pong *)
  spans : Span.t option;
      (** when set, workers stamp [receive]/[execute]/[reply] spans and
          clients stamp [submit]/[collect] spans per job/shard *)
}

val default_config : fingerprint:string -> unit -> config

(** {1 Remote worker} *)

val worker_loop :
  config ->
  lookup:(Proto.job -> (Worker.instance, string) result) ->
  Unix.sockaddr ->
  int
(** Serve shards until the server says [Nw_shutdown] (exit 0) or the
    connection budget runs out (exit 1); a handshake rejection exits 2.
    One connection serves many jobs: the server announces each job once
    ([Nw_job]), the worker expands it with [lookup] and keeps the plan
    for later assignments. All writes pass through the chaos harness
    when configured. *)

(** {1 Submitting client} *)

type outcome =
  | Sweep_outcome of Svm.Explore.sweep_outcome
  | Explore_outcome of Svm.Univ.t Svm.Explore.result

type submission =
  | Finished of outcome
  | Suspended of string
      (** the server drained (SIGTERM) mid-job; resubmit with this job
          id — against this or a restarted server — to continue *)

type stats = {
  job_id : string;
  shards : int;
  shard_size : int;
  resumed : int;  (** shards the server restored from its journal *)
  executed : int;  (** shards computed by workers this run *)
  reconnects : int;  (** times this client had to re-dial mid-job *)
}

val submit :
  ?metrics:Svm.Metrics.t ->
  ?resume:string ->
  config ->
  instance:Worker.instance ->
  job:Proto.job ->
  Unix.sockaddr ->
  (submission * stats, string) result
(** Submit [job], collect every shard payload the server streams, and
    fold them through {!Merge} — the same merge as the in-process path,
    which is what makes stdout and artifacts byte-identical to a local
    run. [instance] is the locally-expanded plan (its cell count
    cross-checks the server's [Sc_accepted]). If the link drops
    mid-job the client reconnects and resumes by job id, re-receiving
    the journalled backlog; [resume] seeds that id up front to continue
    a previously suspended job. *)

(** {1 Status probe} *)

val stats_query : config -> Unix.sockaddr -> (Svm.Json.t, string) result
(** Dial once, handshake as a client, send {!Proto.Cs_stats} and return
    the server's {!Proto.Sc_stats} document ([health] + merged
    [metrics]). No reconnect loop: a probe that cannot reach the server
    fails immediately — this is the backend of [asmsim top] and the
    smoke checks. *)
