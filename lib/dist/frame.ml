type error =
  | Closed
  | Truncated of int
  | Oversized of int
  | Bad_json of string

let pp_error ppf = function
  | Closed -> Format.fprintf ppf "connection closed"
  | Truncated n ->
      Format.fprintf ppf "connection closed mid-frame (%d byte(s) received)" n
  | Oversized n ->
      Format.fprintf ppf "frame payload of %d bytes exceeds the cap" n
  | Bad_json m -> Format.fprintf ppf "frame payload is not JSON: %s" m

let default_max_len = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)
(* ------------------------------------------------------------------ *)

let encode v =
  let payload = Svm.Json.to_string v in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  b

let rec write_all fd b off len =
  if len > 0 then begin
    let w =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + w) (len - w)
  end

let write fd v =
  let b = encode v in
  write_all fd b 0 (Bytes.length b)

(* ------------------------------------------------------------------ *)
(* Blocking reads                                                       *)
(* ------------------------------------------------------------------ *)

(* Read up to [len] bytes into [b], returning how many arrived before
   EOF (may be short only at EOF). *)
let read_full fd b len =
  let rec go off =
    if off >= len then off
    else
      match Unix.read fd b off (len - off) with
      | 0 -> off
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let be32 b =
  (Char.code (Bytes.get b 0) lsl 24)
  lor (Char.code (Bytes.get b 1) lsl 16)
  lor (Char.code (Bytes.get b 2) lsl 8)
  lor Char.code (Bytes.get b 3)

let read ?(max_len = default_max_len) fd =
  let hdr = Bytes.create 4 in
  match read_full fd hdr 4 with
  | 0 -> Error Closed
  | k when k < 4 -> Error (Truncated k)
  | _ ->
      let len = be32 hdr in
      if len > max_len then Error (Oversized len)
      else
        let payload = Bytes.create len in
        let k = read_full fd payload len in
        if k < len then Error (Truncated (4 + k))
        else begin
          match Svm.Json.of_string (Bytes.unsafe_to_string payload) with
          | Ok v -> Ok v
          | Error m -> Error (Bad_json m)
        end

(* ------------------------------------------------------------------ *)
(* Incremental decoding                                                 *)
(* ------------------------------------------------------------------ *)

type decoder = {
  d_max : int;
  mutable buf : Bytes.t;
  mutable start : int;  (* consumed prefix *)
  mutable len : int;  (* valid bytes at buf.[start .. start+len) *)
}

let decoder ?(max_len = default_max_len) () =
  { d_max = max_len; buf = Bytes.create 4096; start = 0; len = 0 }

let pending d = d.len

let ensure d extra =
  let cap = Bytes.length d.buf in
  if d.start + d.len + extra > cap then begin
    (* compact first; grow only if the data itself outgrew the buffer *)
    if d.start > 0 then begin
      Bytes.blit d.buf d.start d.buf 0 d.len;
      d.start <- 0
    end;
    if d.len + extra > cap then begin
      let cap' =
        let rec fit c = if c >= d.len + extra then c else fit (2 * c) in
        fit (2 * cap)
      in
      let buf' = Bytes.create cap' in
      Bytes.blit d.buf 0 buf' 0 d.len;
      d.buf <- buf'
    end
  end

let feed d src n =
  ensure d n;
  Bytes.blit src 0 d.buf (d.start + d.len) n;
  d.len <- d.len + n

let be32_at b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let next d =
  if d.len < 4 then Ok None
  else
    let len = be32_at d.buf d.start in
    if len > d.d_max then Error (Oversized len)
    else if d.len < 4 + len then Ok None
    else begin
      let payload = Bytes.sub_string d.buf (d.start + 4) len in
      d.start <- d.start + 4 + len;
      d.len <- d.len - (4 + len);
      if d.len = 0 then d.start <- 0;
      match Svm.Json.of_string payload with
      | Ok v -> Ok (Some v)
      | Error m -> Error (Bad_json m)
    end
