type error =
  | Closed
  | Truncated of int
  | Oversized of int
  | Bad_json of string
  | Stalled of int

let pp_error ppf = function
  | Closed -> Format.fprintf ppf "connection closed"
  | Truncated n ->
      Format.fprintf ppf "connection closed mid-frame (%d byte(s) received)" n
  | Oversized n ->
      Format.fprintf ppf "frame payload of %d bytes exceeds the cap" n
  | Bad_json m -> Format.fprintf ppf "frame payload is not JSON: %s" m
  | Stalled n ->
      Format.fprintf ppf
        "frame incomplete past its deadline (%d byte(s) received)" n

let default_max_len = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)
(* ------------------------------------------------------------------ *)

let encode v =
  let payload = Svm.Json.to_string v in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  b

let rec write_all fd b off len =
  if len > 0 then begin
    let w =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + w) (len - w)
  end

let write fd v =
  let b = encode v in
  write_all fd b 0 (Bytes.length b)

(* ------------------------------------------------------------------ *)
(* Blocking reads                                                       *)
(* ------------------------------------------------------------------ *)

let be32 b =
  (Char.code (Bytes.get b 0) lsl 24)
  lor (Char.code (Bytes.get b 1) lsl 16)
  lor (Char.code (Bytes.get b 2) lsl 8)
  lor Char.code (Bytes.get b 3)

(* Block until [fd] is readable or the absolute [deadline] passes;
   [false] means the deadline won. *)
let wait_readable fd deadline =
  match deadline with
  | None -> true
  | Some dl ->
      let rec go () =
        let left = dl -. Unix.gettimeofday () in
        if left <= 0. then false
        else
          match Unix.select [ fd ] [] [] left with
          | [], _, _ -> go ()
          | _ -> true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()

let read ?(max_len = default_max_len) ?timeout fd =
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  (* Read exactly [len] bytes into [b], or report how many arrived
     before EOF or the deadline. *)
  let read_full b len =
    let rec go off =
      if off >= len then `Full
      else if not (wait_readable fd deadline) then `Stalled off
      else
        match Unix.read fd b off (len - off) with
        | 0 -> `Eof off
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0
  in
  let hdr = Bytes.create 4 in
  match read_full hdr 4 with
  | `Eof 0 -> Error Closed
  | `Eof k -> Error (Truncated k)
  | `Stalled k -> Error (Stalled k)
  | `Full -> (
      let len = be32 hdr in
      if len > max_len then Error (Oversized len)
      else
        let payload = Bytes.create len in
        match read_full payload len with
        | `Eof k -> Error (Truncated (4 + k))
        | `Stalled k -> Error (Stalled (4 + k))
        | `Full -> (
            match Svm.Json.of_string (Bytes.unsafe_to_string payload) with
            | Ok v -> Ok v
            | Error m -> Error (Bad_json m)))

(* ------------------------------------------------------------------ *)
(* Incremental decoding                                                 *)
(* ------------------------------------------------------------------ *)

type decoder = {
  d_max : int;
  d_stall : float option;  (* seconds allowed to complete a frame *)
  mutable buf : Bytes.t;
  mutable start : int;  (* consumed prefix *)
  mutable len : int;  (* valid bytes at buf.[start .. start+len) *)
  mutable frame_since : float option;
      (* when the first byte of the currently-incomplete frame arrived;
         [None] whenever the buffer sits at a frame boundary *)
}

let decoder ?(max_len = default_max_len) ?stall_timeout () =
  {
    d_max = max_len;
    d_stall = stall_timeout;
    buf = Bytes.create 4096;
    start = 0;
    len = 0;
    frame_since = None;
  }

let pending d = d.len

let ensure d extra =
  let cap = Bytes.length d.buf in
  if d.start + d.len + extra > cap then begin
    (* compact first; grow only if the data itself outgrew the buffer *)
    if d.start > 0 then begin
      Bytes.blit d.buf d.start d.buf 0 d.len;
      d.start <- 0
    end;
    if d.len + extra > cap then begin
      let cap' =
        let rec fit c = if c >= d.len + extra then c else fit (2 * c) in
        fit (2 * cap)
      in
      let buf' = Bytes.create cap' in
      Bytes.blit d.buf 0 buf' 0 d.len;
      d.buf <- buf'
    end
  end

let feed ?now d src n =
  ensure d n;
  Bytes.blit src 0 d.buf (d.start + d.len) n;
  d.len <- d.len + n;
  if d.len > 0 && d.frame_since = None then d.frame_since <- now

let be32_at b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* An incomplete frame has overstayed its deadline when the decoder was
   given a stall timeout, the caller supplies the clock, and the first
   byte of the pending frame is older than the allowance. Whole frames
   drained promptly never trip this — the clock restarts at every frame
   boundary. *)
let stalled d ~now =
  match (d.d_stall, d.frame_since, now) with
  | Some allow, Some since, Some now -> now -. since > allow
  | _ -> false

let next ?now d =
  if d.len < 4 then if stalled d ~now then Error (Stalled d.len) else Ok None
  else
    let len = be32_at d.buf d.start in
    if len > d.d_max then Error (Oversized len)
    else if d.len < 4 + len then
      if stalled d ~now then Error (Stalled d.len) else Ok None
    else begin
      let payload = Bytes.sub_string d.buf (d.start + 4) len in
      d.start <- d.start + 4 + len;
      d.len <- d.len - (4 + len);
      if d.len = 0 then begin
        d.start <- 0;
        d.frame_since <- None
      end
      else d.frame_since <- now;
      match Svm.Json.of_string payload with
      | Ok v -> Ok (Some v)
      | Error m -> Error (Bad_json m)
    end
