module Json = Svm.Json
module Timeline = Svm.Timeline

type t = { proc : string; oc : out_channel }

let create ~proc ~oc = { proc; oc }
let proc t = t.proc

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

let emit t ~phase ~job ~shard ~start_us =
  match t with
  | None -> ()
  | Some t ->
      let stop = now_us () in
      let span =
        {
          Timeline.ps_proc = t.proc;
          ps_phase = phase;
          ps_job = job;
          ps_shard = shard;
          ps_ts = start_us;
          ps_dur = max 1 (stop - start_us);
        }
      in
      output_string t.oc (Json.to_string (Timeline.pspan_to_json span));
      output_char t.oc '\n';
      flush t.oc

let job_tag fp = Digest.to_hex (Digest.string fp)

let load_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let spans = ref [] in
          let skipped = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if String.trim line <> "" then
                 match Json.of_string line with
                 | Error _ -> incr skipped
                 | Ok j -> (
                     match Timeline.pspan_of_json j with
                     | Ok s -> spans := s :: !spans
                     | Error _ -> incr skipped)
             done
           with End_of_file -> ());
          Ok (List.rev !spans, !skipped))
