(** Per-process span recording for cross-process tracing.

    Each fleet process (the serve queue, every remote worker, the
    submitting client) appends {!Svm.Timeline.pspan} records — one
    compact JSON object per line — to its own file, given by the
    [--spans FILE] CLI flag. After the run, [asmsim trace-merge] loads
    any number of such files and fuses them through
    {!Svm.Timeline.merge_processes} into one Chrome trace, correlated
    across processes by job-fingerprint digest + shard index.

    Recording is wall-clock by necessity (the whole point is where real
    time went), which is why spans live in their own side files and
    never touch stdout: the byte-identity discipline of [--connect]
    runs is untouched. *)

type t

val create : proc:string -> oc:out_channel -> t
(** A recorder writing to [oc] (caller closes it); [proc] labels this
    OS process's lane in the merged trace. Each span is flushed as it
    is written, so a SIGKILLed process loses at most one torn line —
    which {!load_file} skips and counts. *)

val proc : t -> string

val now_us : unit -> int
(** Wall-clock microseconds ([Unix.gettimeofday]). *)

val emit :
  t option -> phase:string -> job:string -> shard:int -> start_us:int -> unit
(** Record a span that began at [start_us] and ends now. No-op on
    [None] — producers thread a [t option] exactly like [?metrics]. *)

val job_tag : string -> string
(** Digest (MD5 hex) of a job fingerprint: the short correlation key
    both sides of the wire can compute independently. *)

val load_file : string -> (Svm.Timeline.pspan list * int, string) result
(** Parse a span file: [(spans, skipped)] where [skipped] counts
    unparseable lines (e.g. one torn tail line from a killed process).
    [Error] only when the file cannot be read at all. *)
