(** Length-prefixed JSON frames over file descriptors — the wire layer
    of the coordinator/worker protocol.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of compact {!Svm.Json}. The layer is hardened for untrusted
    peers: payload size is capped {e before} allocation, and every
    failure mode is a typed [error] — reading never raises and never
    allocates unboundedly, whatever bytes arrive. *)

type error =
  | Closed  (** peer closed cleanly at a frame boundary *)
  | Truncated of int
      (** peer closed mid-frame, with that many bytes of it received *)
  | Oversized of int  (** declared payload length exceeds the cap *)
  | Bad_json of string  (** payload is not a JSON value *)

val pp_error : Format.formatter -> error -> unit

val default_max_len : int
(** Payload cap: 16 MiB. Far above any real shard result (a few KiB),
    far below anything that could OOM the coordinator. *)

val write : Unix.file_descr -> Svm.Json.t -> unit
(** Encode and write one frame, looping over short writes. Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone — callers
    ignore SIGPIPE and treat the exception as peer death. *)

(** {1 Blocking reads (worker side)} *)

val read : ?max_len:int -> Unix.file_descr -> (Svm.Json.t, error) result
(** Read exactly one frame, blocking until it is complete. *)

(** {1 Incremental decoding (coordinator side)}

    The coordinator multiplexes many workers under [Unix.select], so it
    cannot block on any one of them: it feeds whatever bytes arrived
    into a per-worker decoder and drains complete frames. *)

type decoder

val decoder : ?max_len:int -> unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. *)

val next : decoder -> (Svm.Json.t option, error) result
(** Next complete frame, [Ok None] if more bytes are needed. Drain with
    repeated calls until [Ok None]. [Error] (oversized or bad JSON)
    poisons the stream — the peer is not speaking the protocol. *)

val pending : decoder -> int
(** Buffered bytes not yet part of a returned frame — non-zero at EOF
    means the peer died mid-frame. *)
