(** Length-prefixed JSON frames over file descriptors — the wire layer
    of the coordinator/worker protocol.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of compact {!Svm.Json}. The layer is hardened for untrusted
    peers: payload size is capped {e before} allocation, an incomplete
    frame can be put on a deadline instead of being waited on forever,
    and every failure mode is a typed [error] — reading never raises
    and never allocates unboundedly, whatever bytes arrive. *)

type error =
  | Closed  (** peer closed cleanly at a frame boundary *)
  | Truncated of int
      (** peer closed mid-frame, with that many bytes of it received *)
  | Oversized of int  (** declared payload length exceeds the cap *)
  | Bad_json of string  (** payload is not a JSON value *)
  | Stalled of int
      (** frame still incomplete past its deadline, with that many
          bytes of it received — a slow-loris peer, not a slow link *)

val pp_error : Format.formatter -> error -> unit

val default_max_len : int
(** Payload cap: 16 MiB. Far above any real shard result (a few KiB),
    far below anything that could OOM the coordinator. *)

val encode : Svm.Json.t -> bytes
(** The exact bytes {!write} would send — header plus payload. Exposed
    for the chaos harness, which needs to send {e partial} frames. *)

val write : Unix.file_descr -> Svm.Json.t -> unit
(** Encode and write one frame, looping over short writes. Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone — callers
    ignore SIGPIPE and treat the exception as peer death. *)

(** {1 Blocking reads (worker side)} *)

val read :
  ?max_len:int -> ?timeout:float -> Unix.file_descr -> (Svm.Json.t, error) result
(** Read exactly one frame, blocking until it is complete. With
    [timeout], the whole frame must arrive within that many seconds or
    the read fails with [Stalled] — the worker-side defense against a
    coordinator (or an impostor) that opens a frame and goes quiet. *)

(** {1 Incremental decoding (coordinator side)}

    The coordinator multiplexes many workers under [Unix.select], so it
    cannot block on any one of them: it feeds whatever bytes arrived
    into a per-worker decoder and drains complete frames. *)

type decoder

val decoder : ?max_len:int -> ?stall_timeout:float -> unit -> decoder
(** With [stall_timeout], an incomplete frame older than that many
    seconds makes {!next} fail with [Stalled] — provided the caller
    passes its clock to {!feed} and {!next}. Without it (or without a
    clock) incomplete frames simply wait, as a trusted local socketpair
    may. *)

val feed : ?now:float -> decoder -> bytes -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. [now] stamps
    the start of a frame for the stall deadline. *)

val next : ?now:float -> decoder -> (Svm.Json.t option, error) result
(** Next complete frame, [Ok None] if more bytes are needed. Drain with
    repeated calls until [Ok None]. [Error] (oversized, bad JSON, or a
    stalled incomplete frame) poisons the stream — the peer is not
    speaking the protocol. *)

val pending : decoder -> int
(** Buffered bytes not yet part of a returned frame — non-zero at EOF
    means the peer died mid-frame. *)
