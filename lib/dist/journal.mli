(** Append-only job journals: crash-tolerant coordinator state.

    A journal is a directory [<dir>/<job-id>/] holding one
    [journal.jsonl] file: a header line recording the job, its cell
    count and the shard size, followed by one line per completed shard
    (carrying the shard's result payload) and per hostile shard. Lines
    are flushed as written, so a coordinator killed at any instant
    leaves a journal whose intact prefix is a set of {e finished}
    shards — resuming re-runs only the rest. {!load} tolerates a
    truncated final line (the one the dying coordinator was writing).

    Shard indices are only meaningful against the recorded shard size,
    which is why it is in the header: a resumed run re-shards the plan
    identically instead of re-deriving a size from its own worker
    count. *)

val default_dir : string
(** [".asmsim-jobs"], relative to the working directory. *)

type t
(** An open journal, owned by one coordinator. *)

val create :
  ?dir:string ->
  ?fsync:bool ->
  job:Proto.job ->
  cells:int ->
  shard_size:int ->
  unit ->
  t
(** Create [<dir>/<fresh-id>/journal.jsonl] and write the header. With
    [fsync] (default [false]), every appended line is [fsync]ed —
    checkpoints then survive power loss, not just process death, at the
    cost of a disk round-trip per shard — and the journal's directory
    entries are synced at creation, so the file itself cannot vanish on
    a kill-after-create (a durable file in an undurable directory is
    not durable). *)

val reopen : ?dir:string -> ?fsync:bool -> string -> (t, string) result
(** Open an existing journal for appending (resume). A torn final line
    — the append a crash interrupted — is truncated away first, so new
    records always start at a record boundary instead of being welded
    onto the torn tail. *)

val id : t -> string
val append_shard : t -> shard:int -> payload:Svm.Json.t -> unit
val append_hostile : t -> shard:int -> unit
val close : t -> unit

type loaded = {
  l_job : Proto.job;
  l_cells : int;
  l_shard_size : int;
  l_done : (int * Svm.Json.t) list;  (** completed shards, oldest first *)
  l_hostile : int list;
}

val load : ?dir:string -> string -> (loaded, string) result
(** Parse a journal. Corrupt trailing data (an interrupted final write,
    whether torn mid-line or newline-terminated garbage) is ignored; a
    corrupt header or missing file is an [Error]. *)

val list_ids : ?dir:string -> unit -> string list
(** Job ids present under [dir], sorted. *)
