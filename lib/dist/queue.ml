module Json = Svm.Json
module Metrics = Svm.Metrics
module Log = Svm.Log

type config = {
  fingerprint : string;
  shard_size : int option;
  shard_timeout : float;
  heartbeat_timeout : float;
  handshake_timeout : float;
  frame_stall_timeout : float;
  rate_limit : int;
  max_retries : int;
  backoff : float;
  journal_dir : string;
  fsync : bool;
  log : Log.t;
  metrics : Metrics.t option;
  spans : Span.t option;
}

let default_config ~fingerprint () =
  {
    fingerprint;
    shard_size = None;
    shard_timeout = 120.;
    heartbeat_timeout = 20.;
    handshake_timeout = 5.;
    frame_stall_timeout = 10.;
    rate_limit = 64 * 1024 * 1024;
    (* Remote workers under chaos lose shards routinely; the hostile
       bound must stay a pathology detector, not a chaos tripwire. *)
    max_retries = 10;
    backoff = 0.05;
    journal_dir = Journal.default_dir;
    fsync = false;
    log = Log.null;
    metrics = None;
    spans = None;
  }

(* {2 State} *)

type wstate = W_idle | W_busy of { jid : string; shard : int; deadline : float }

type wsess = {
  ws_announced : (string, unit) Hashtbl.t;
  ws_acked : (string, unit) Hashtbl.t;
  mutable ws_state : wstate;
  mutable ws_push : Metrics.t option;
      (** last metrics registry this worker pushed on a pong *)
}

type csess = { mutable cs_watching : string option }

type psort = Pending of float | Worker_peer of wsess | Client_peer of csess

type peer = {
  p_id : int;
  p_fd : Unix.file_descr;
  p_dec : Frame.decoder;
  p_name : string;
  mutable p_sort : psort;
  mutable p_last : float;
  mutable p_pinged : bool;
  mutable p_alive : bool;
  mutable p_win_start : float;
  mutable p_win_bytes : int;
  mutable p_bytes_in : int;
  mutable p_frames_in : int;
  mutable p_frames_out : int;
}

type shard_state = Sh_pending | Sh_running of int | Sh_done

type shard = {
  sh_id : int;
  sh_lo : int;
  sh_hi : int;
  mutable sh_state : shard_state;
  mutable sh_not_before : float;
  mutable sh_attempts : int;
}

type job = {
  jb_id : string;
  jb_job : Proto.job;
  jb_fp : string;
  jb_tag : string;  (** span-correlation tag: digest of the fingerprint *)
  jb_units : int;
  jb_shard_size : int;
  jb_check : lo:int -> hi:int -> Json.t -> (int option, string) result;
  jb_shards : shard array;
  jb_payloads : Json.t option array;
  jb_journal : Journal.t;
  mutable jb_cut : int;
  mutable jb_resumed : int;
  mutable jb_executed : int;
  mutable jb_watchers : int list;
}

type engine = {
  cfg : config;
  lookup : Proto.job -> (Worker.instance, string) result;
  listener : Unix.file_descr;
  term : bool ref;
  jobs : (string, job) Hashtbl.t;
  mutable order : string list;  (** active job ids, FIFO arrival order *)
  mutable peers : peer list;
  mutable next_pid : int;
  mutable draining : bool;
  started : float;  (** wall clock at serve start, for health uptime *)
  departed : Metrics.t;
      (** pushed registries of disconnected workers, folded in so fleet
          totals never shrink when a peer leaves *)
}

let now () = Unix.gettimeofday ()

let logf e fmt = Log.infof e.cfg.log fmt
let warnf e fmt = Log.warnf e.cfg.log fmt
let debugf e fmt = Log.debugf e.cfg.log fmt

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let find_peer e pid = List.find_opt (fun p -> p.p_id = pid) e.peers

let gauge_peers e =
  Metrics.record e.cfg.metrics "net_peers" (List.length e.peers);
  Metrics.record e.cfg.metrics "net_jobs_active" (Hashtbl.length e.jobs)

let queue_depth e =
  Hashtbl.fold
    (fun _ jb acc ->
      Array.fold_left
        (fun acc sh ->
          if sh.sh_state <> Sh_done && sh.sh_lo <= jb.jb_cut then acc + 1
          else acc)
        acc jb.jb_shards)
    e.jobs 0

(* {2 Peer lifecycle, shard loss, job verdicts}

   These are mutually recursive: losing a peer requeues its shard,
   which can turn a job hostile, which notifies watcher clients, whose
   writes can fail and lose further peers. *)

let rec peer_gone e p ~reason =
  if p.p_alive then begin
    p.p_alive <- false;
    e.peers <- List.filter (fun x -> x.p_id <> p.p_id) e.peers;
    close_quiet p.p_fd;
    warnf e "%s is gone: %s" p.p_name reason;
    gauge_peers e;
    (* Keep what the worker told us about itself: its last pushed
       registry folds into the departed pool so fleet totals survive
       the disconnect. *)
    (match p.p_sort with
    | Worker_peer { ws_push = Some m; _ } -> Metrics.merge ~into:e.departed m
    | _ -> ());
    match p.p_sort with
    | Pending _ -> ()
    | Client_peer c -> (
        match c.cs_watching with
        | None -> ()
        | Some jid -> (
            c.cs_watching <- None;
            match Hashtbl.find_opt e.jobs jid with
            | None -> ()
            | Some jb ->
                jb.jb_watchers <-
                  List.filter (fun id -> id <> p.p_id) jb.jb_watchers))
    | Worker_peer w -> (
        match w.ws_state with
        | W_idle -> ()
        | W_busy { jid; shard; _ } -> shard_lost e ~jid ~shard)
  end

and shard_lost e ~jid ~shard =
  match Hashtbl.find_opt e.jobs jid with
  | None -> ()
  | Some jb -> (
      let sh = jb.jb_shards.(shard) in
      match sh.sh_state with
      | Sh_running _ -> (
          sh.sh_attempts <- sh.sh_attempts + 1;
          Metrics.bump e.cfg.metrics "net_shard_retries_total";
          Metrics.sample e.cfg.metrics "net_shard_retry_ladder" sh.sh_attempts;
          match
            Policy.retry ~max_retries:e.cfg.max_retries ~base:e.cfg.backoff
              ~attempts:sh.sh_attempts
          with
          | Policy.Requeue delay ->
              sh.sh_state <- Sh_pending;
              sh.sh_not_before <- now () +. delay;
              warnf e "job %s shard %d back in the queue (lost attempt %d)" jid
                sh.sh_id sh.sh_attempts
          | Policy.Hostile ->
              Journal.append_hostile jb.jb_journal ~shard:sh.sh_id;
              job_over e jb
                (`Failed
                  (Printf.sprintf
                     "shard %d [%d,%d) is hostile: it took down %d workers"
                     sh.sh_id sh.sh_lo sh.sh_hi sh.sh_attempts)))
      | Sh_pending | Sh_done -> ())

and send_client e p msg =
  if p.p_alive then begin
    try
      Frame.write p.p_fd (Proto.server_to_client_to_json msg);
      p.p_frames_out <- p.p_frames_out + 1;
      Metrics.bump e.cfg.metrics "net_frames_out_total"
    with Unix.Unix_error (err, _, _) ->
      peer_gone e p ~reason:("write failed: " ^ Unix.error_message err)
  end

and job_over e jb verdict =
  let msg =
    match verdict with
    | `Done -> Proto.Sc_done { executed = jb.jb_executed; resumed = jb.jb_resumed }
    | `Failed m ->
        warnf e "job %s failed: %s" jb.jb_id m;
        Proto.Sc_failed m
  in
  let watchers = jb.jb_watchers in
  jb.jb_watchers <- [];
  Hashtbl.remove e.jobs jb.jb_id;
  e.order <- List.filter (fun id -> id <> jb.jb_id) e.order;
  Journal.close jb.jb_journal;
  gauge_peers e;
  List.iter
    (fun pid ->
      match find_peer e pid with
      | None -> ()
      | Some p ->
          (match p.p_sort with
          | Client_peer c -> c.cs_watching <- None
          | _ -> ());
          send_client e p msg)
    watchers;
  if verdict = `Done then
    logf e "job %s complete: %d shard(s) executed, %d resumed" jb.jb_id
      jb.jb_executed jb.jb_resumed

let send_worker e p msg =
  if p.p_alive then begin
    try
      Frame.write p.p_fd (Proto.net_to_worker_to_json msg);
      p.p_frames_out <- p.p_frames_out + 1;
      Metrics.bump e.cfg.metrics "net_frames_out_total"
    with Unix.Unix_error (err, _, _) ->
      peer_gone e p ~reason:("write failed: " ^ Unix.error_message err)
  end

let job_maybe_done e jb =
  let remaining =
    Array.fold_left
      (fun acc sh ->
        if sh.sh_state <> Sh_done && sh.sh_lo <= jb.jb_cut then acc + 1
        else acc)
      0 jb.jb_shards
  in
  if remaining = 0 then job_over e jb `Done

(* {2 Jobs} *)

let announce e jb =
  List.iter
    (fun p ->
      match p.p_sort with
      | Worker_peer w when not (Hashtbl.mem w.ws_announced jb.jb_id) ->
          Hashtbl.replace w.ws_announced jb.jb_id ();
          send_worker e p (Proto.Nw_job { jid = jb.jb_id; job = jb.jb_job })
      | _ -> ())
    e.peers

let make_job ~id ~job ~units ~shard_size ~check ~journal =
  let nshards = if units = 0 then 0 else (units + shard_size - 1) / shard_size in
  let fp = Proto.job_fingerprint job in
  {
    jb_id = id;
    jb_job = job;
    jb_fp = fp;
    jb_tag = Span.job_tag fp;
    jb_units = units;
    jb_shard_size = shard_size;
    jb_check = check;
    jb_shards =
      Array.init nshards (fun i ->
          {
            sh_id = i;
            sh_lo = i * shard_size;
            sh_hi = min units ((i + 1) * shard_size);
            sh_state = Sh_pending;
            sh_not_before = 0.;
            sh_attempts = 0;
          });
    jb_payloads = Array.make nshards None;
    jb_journal = journal;
    jb_cut = max_int;
    jb_resumed = 0;
    jb_executed = 0;
    jb_watchers = [];
  }

let register e jb =
  let admit_start = Span.now_us () in
  Hashtbl.replace e.jobs jb.jb_id jb;
  e.order <- e.order @ [ jb.jb_id ];
  Metrics.bump e.cfg.metrics "net_jobs_total";
  gauge_peers e;
  announce e jb;
  Span.emit e.cfg.spans ~phase:"admit" ~job:jb.jb_tag ~shard:(-1)
    ~start_us:admit_start

(* Accept a validated shard payload into the job: journal it, store it,
   stream it to the watchers, advance the finding cut. *)
let shard_done e jb ~shard ~payload ~finding ~restored =
  let merge_start = Span.now_us () in
  let sh = jb.jb_shards.(shard) in
  sh.sh_state <- Sh_done;
  jb.jb_payloads.(shard) <- Some payload;
  if restored then jb.jb_resumed <- jb.jb_resumed + 1
  else begin
    Journal.append_shard jb.jb_journal ~shard ~payload;
    jb.jb_executed <- jb.jb_executed + 1;
    Metrics.bump e.cfg.metrics "net_shards_executed_total";
    Metrics.bump e.cfg.metrics
      ("net_shards_by_scenario." ^ jb.jb_job.Proto.scenario)
  end;
  (match finding with
  | Some abs when abs < jb.jb_cut ->
      jb.jb_cut <- abs;
      logf e "job %s: finding at cell %d (shard %d); cutting the tail"
        jb.jb_id abs shard
  | _ -> ());
  List.iter
    (fun pid ->
      match find_peer e pid with
      | Some p -> send_client e p (Proto.Sc_shard { shard; payload })
      | None -> ())
    jb.jb_watchers;
  if not restored then
    Span.emit e.cfg.spans ~phase:"merge" ~job:jb.jb_tag ~shard
      ~start_us:merge_start

let attach e p c jb =
  c.cs_watching <- Some jb.jb_id;
  jb.jb_watchers <- p.p_id :: jb.jb_watchers;
  send_client e p
    (Proto.Sc_accepted
       { jid = jb.jb_id; cells = jb.jb_units; shard_size = jb.jb_shard_size });
  Array.iteri
    (fun i sh ->
      if p.p_alive && sh.sh_state = Sh_done then
        match jb.jb_payloads.(i) with
        | Some payload -> send_client e p (Proto.Sc_shard { shard = i; payload })
        | None -> ())
    jb.jb_shards;
  job_maybe_done e jb

let reject_client e p msg =
  send_client e p (Proto.Sc_rejected msg);
  peer_gone e p ~reason:("submit rejected: " ^ msg)

let default_shard_size e ~units =
  match e.cfg.shard_size with
  | Some s -> max 1 s
  | None ->
      let workers =
        List.fold_left
          (fun acc p ->
            match p.p_sort with Worker_peer _ -> acc + 1 | _ -> acc)
          0 e.peers
      in
      let workers = max 1 workers in
      if units = 0 then 1
      else min 256 (max 1 ((units + (workers * 8) - 1) / (workers * 8)))

(* Server-side result cache: a fresh submit whose fingerprint matches a
   journal recording a fully-completed run of the same job can be
   answered from that journal — zero shards re-executed. Only completed,
   non-hostile journals qualify, where "completed" mirrors
   [job_maybe_done]: every shard up to the finding cut is present (a
   run that found a violation never executed its tail, and never needs
   to). Every restored payload is re-validated exactly as if a worker
   had just sent it. *)
let cached_completed e ~fp ~units ~check =
  Journal.list_ids ~dir:e.cfg.journal_dir ()
  |> List.find_map (fun id ->
         if Hashtbl.mem e.jobs id then None
         else
           match Journal.load ~dir:e.cfg.journal_dir id with
           | Error _ -> None
           | Ok l ->
               if
                 Proto.job_fingerprint l.l_job <> fp
                 || l.l_cells <> units || l.l_hostile <> []
                 || l.l_shard_size < 1
               then None
               else begin
                 let nshards =
                   if units = 0 then 0
                   else (units + l.l_shard_size - 1) / l.l_shard_size
                 in
                 let shards = Array.make nshards None in
                 List.iter
                   (fun (shard, payload) ->
                     if shard >= 0 && shard < nshards && shards.(shard) = None
                     then
                       let lo = shard * l.l_shard_size in
                       let hi = min units ((shard + 1) * l.l_shard_size) in
                       match check ~lo ~hi payload with
                       | Ok finding -> shards.(shard) <- Some (payload, finding)
                       | Error _ -> ())
                   l.l_done;
                 let cut =
                   Array.fold_left
                     (fun acc -> function
                       | Some (_, Some abs) -> min acc abs
                       | _ -> acc)
                     max_int shards
                 in
                 let complete = ref true in
                 Array.iteri
                   (fun i entry ->
                     if i * l.l_shard_size <= cut && entry = None then
                       complete := false)
                   shards;
                 if !complete then Some (id, l.l_shard_size, shards)
                 else None
               end)

let handle_submit e p c ~job ~resume =
  if c.cs_watching <> None then
    peer_gone e p ~reason:"second submit on one connection"
  else if e.draining then reject_client e p "server is draining"
  else
    match e.lookup job with
    | Error m -> reject_client e p ("cannot expand job: " ^ m)
    | Ok inst -> (
        let units = Worker.cells_of_instance inst in
        let check =
          match inst with
          | Worker.Sweep_instance _ -> Proto.check_sweep_payload
          | Worker.Explore_instance _ -> Proto.check_explore_payload
        in
        let fp = Proto.job_fingerprint job in
        match resume with
        | Some id -> (
            match Hashtbl.find_opt e.jobs id with
            | Some jb ->
                if jb.jb_fp <> fp then
                  reject_client e p
                    (Printf.sprintf "job %s is a different job description" id)
                else attach e p c jb
            | None -> (
                (* Not live: revive it from its journal. *)
                match Journal.load ~dir:e.cfg.journal_dir id with
                | Error m -> reject_client e p m
                | Ok l ->
                    if Proto.job_fingerprint l.l_job <> fp then
                      reject_client e p
                        (Printf.sprintf
                           "job %s was journalled for a different job \
                            description"
                           id)
                    else if l.l_cells <> units then
                      reject_client e p
                        (Printf.sprintf
                           "job %s journalled %d cells, the plan has %d" id
                           l.l_cells units)
                    else if l.l_hostile <> [] then
                      reject_client e p
                        (Printf.sprintf
                           "job %s recorded shard %d as hostile; not resumable"
                           id (List.hd l.l_hostile))
                    else (
                      match
                        Journal.reopen ~dir:e.cfg.journal_dir
                          ~fsync:e.cfg.fsync id
                      with
                      | Error m -> reject_client e p m
                      | Ok journal ->
                          let jb =
                            make_job ~id ~job ~units
                              ~shard_size:l.l_shard_size ~check ~journal
                          in
                          List.iter
                            (fun (shard, payload) ->
                              let n = Array.length jb.jb_shards in
                              if
                                shard >= 0 && shard < n
                                && jb.jb_shards.(shard).sh_state <> Sh_done
                              then
                                match
                                  check ~lo:jb.jb_shards.(shard).sh_lo
                                    ~hi:jb.jb_shards.(shard).sh_hi payload
                                with
                                | Ok finding ->
                                    shard_done e jb ~shard ~payload ~finding
                                      ~restored:true
                                | Error _ -> ())
                            l.l_done;
                          register e jb;
                          logf e "job %s revived from its journal (%d shard(s) \
                                  restored)"
                            id jb.jb_resumed;
                          attach e p c jb)))
        | None -> (
            (* Coalesce identical submissions onto the live job. *)
            let existing =
              List.find_map
                (fun id ->
                  match Hashtbl.find_opt e.jobs id with
                  | Some jb when jb.jb_fp = fp && jb.jb_units = units ->
                      Some jb
                  | _ -> None)
                e.order
            in
            let fresh () =
              let shard_size = default_shard_size e ~units in
              match
                Journal.create ~dir:e.cfg.journal_dir ~fsync:e.cfg.fsync
                  ~job ~cells:units ~shard_size ()
              with
              | exception exn ->
                  reject_client e p
                    ("cannot create journal: " ^ Printexc.to_string exn)
              | journal ->
                  let jb =
                    make_job ~id:(Journal.id journal) ~job ~units
                      ~shard_size ~check ~journal
                  in
                  register e jb;
                  logf e "job %s accepted: %d cell(s) in %d shard(s)"
                    jb.jb_id units
                    (Array.length jb.jb_shards);
                  attach e p c jb
            in
            match existing with
            | Some jb ->
                logf e "coalescing submit onto live job %s" jb.jb_id;
                attach e p c jb
            | None -> (
                match cached_completed e ~fp ~units ~check with
                | None -> fresh ()
                | Some (id, shard_size, shards) -> (
                    match
                      Journal.reopen ~dir:e.cfg.journal_dir ~fsync:e.cfg.fsync
                        id
                    with
                    | Error _ -> fresh ()
                    | Ok journal ->
                        let jb =
                          make_job ~id ~job ~units ~shard_size ~check ~journal
                        in
                        Array.iteri
                          (fun shard -> function
                            | Some (payload, finding) ->
                                shard_done e jb ~shard ~payload ~finding
                                  ~restored:true
                            | None -> ())
                          shards;
                        register e jb;
                        Metrics.bump e.cfg.metrics "net_cache_hits_total";
                        logf e
                          "job %s answered from its completed journal (cache \
                           hit, %d shard(s))"
                          id jb.jb_resumed;
                        attach e p c jb))))

(* {2 Worker messages} *)

let handle_worker_msg e p w msg =
  match msg with
  | Proto.Nf_pong { metrics } -> (
      match metrics with
      | None -> ()
      | Some snap -> (
          (* A worker's pushed registry replaces its previous push (the
             snapshot is cumulative); a malformed push is a protocol
             violation like any other undecodable frame. *)
          match Metrics.of_snapshot snap with
          | Ok reg ->
              w.ws_push <- Some reg;
              Metrics.bump e.cfg.metrics "net_metrics_pushes_total";
              debugf e "%s pushed a metrics snapshot" p.p_name
          | Error m ->
              peer_gone e p ~reason:("bad metrics push: " ^ m)))
  | Proto.Nf_progress { jid; shard; completed } ->
      debugf e "%s: job %s shard %d at %d cell(s)" p.p_name jid shard completed
  | Proto.Nf_job_ok { jid; cells } -> (
      match Hashtbl.find_opt e.jobs jid with
      | None -> ()
      | Some jb ->
          if cells <> jb.jb_units then
            peer_gone e p
              ~reason:
                (Printf.sprintf
                   "planned %d cells for job %s but the server planned %d — \
                    registries disagree"
                   cells jid jb.jb_units)
          else Hashtbl.replace w.ws_acked jid ())
  | Proto.Nf_job_err { jid; msg } ->
      (* The fingerprint matched, so both sides must expand the job the
         same way; a rejection here means they do not. *)
      peer_gone e p ~reason:(Printf.sprintf "rejected job %s: %s" jid msg)
  | Proto.Nf_result { jid; shard; payload } -> (
      match Hashtbl.find_opt e.jobs jid with
      | None -> (
          (* The job ended while the result was in flight: stale. *)
          match w.ws_state with
          | W_busy { jid = j; shard = s; _ } when j = jid && s = shard ->
              w.ws_state <- W_idle
          | _ -> ())
      | Some jb ->
          if shard < 0 || shard >= Array.length jb.jb_shards then
            peer_gone e p ~reason:"result for an unknown shard"
          else begin
            let sh = jb.jb_shards.(shard) in
            let owned =
              match (sh.sh_state, w.ws_state) with
              | Sh_running pid, W_busy { jid = j; shard = s; _ } ->
                  pid = p.p_id && j = jid && s = shard
              | _ -> false
            in
            if not owned then
              peer_gone e p ~reason:"result for a shard it does not own"
            else
              match jb.jb_check ~lo:sh.sh_lo ~hi:sh.sh_hi payload with
              | Error m ->
                  (* Leave the worker busy so its death requeues the
                     shard through the ordinary loss path. *)
                  peer_gone e p
                    ~reason:
                      (Printf.sprintf "bad payload for job %s shard %d: %s"
                         jid shard m)
              | Ok finding ->
                  w.ws_state <- W_idle;
                  shard_done e jb ~shard ~payload ~finding ~restored:false;
                  job_maybe_done e jb
          end)

(* {2 Handshake} *)

let handle_hello e p v =
  let reject msg =
    Metrics.bump e.cfg.metrics "net_handshake_rejects_total";
    (if p.p_alive then
       try Frame.write p.p_fd (Proto.welcome_to_json (Proto.Rejected msg))
       with Unix.Unix_error _ -> ());
    peer_gone e p ~reason:("handshake rejected: " ^ msg)
  in
  match Proto.hello_of_json v with
  | Error m -> reject ("bad hello: " ^ m)
  | Ok h ->
      if e.draining then reject "server is draining"
      else if h.Proto.h_version <> Proto.net_version then
        reject
          (Printf.sprintf "protocol version %d unsupported (this server \
                           speaks %d)"
             h.Proto.h_version Proto.net_version)
      else if h.Proto.h_fingerprint <> e.cfg.fingerprint then
        reject "scenario-registry fingerprint mismatch"
      else begin
        (try Frame.write p.p_fd (Proto.welcome_to_json Proto.Welcome)
         with Unix.Unix_error (err, _, _) ->
           peer_gone e p ~reason:("write failed: " ^ Unix.error_message err));
        if p.p_alive then begin
          (match h.Proto.h_role with
          | Proto.Worker_role ->
              let w =
                {
                  ws_announced = Hashtbl.create 4;
                  ws_acked = Hashtbl.create 4;
                  ws_state = W_idle;
                  ws_push = None;
                }
              in
              p.p_sort <- Worker_peer w;
              Metrics.bump e.cfg.metrics "net_workers_total";
              logf e "%s joined as a worker" p.p_name;
              (* Catch it up on every live job. *)
              List.iter
                (fun jid ->
                  match Hashtbl.find_opt e.jobs jid with
                  | Some jb ->
                      Hashtbl.replace w.ws_announced jid ();
                      send_worker e p (Proto.Nw_job { jid; job = jb.jb_job })
                  | None -> ())
                e.order
          | Proto.Client_role ->
              p.p_sort <- Client_peer { cs_watching = None };
              Metrics.bump e.cfg.metrics "net_clients_total";
              logf e "%s joined as a client" p.p_name)
        end
      end

(* {2 Live stats}

   The whole introspection document is assembled from state the select
   loop already owns, so answering [Cs_stats] never blocks a job: a
   health summary straight off the engine, plus one merged registry —
   the server's own counters folded with every pushed worker registry
   (live and departed) through the commutative [Metrics.merge]. *)

let stats_doc e =
  let t = now () in
  let nworkers, nclients, npending =
    List.fold_left
      (fun (w, c, pd) p ->
        match p.p_sort with
        | Worker_peer _ -> (w + 1, c, pd)
        | Client_peer _ -> (w, c + 1, pd)
        | Pending _ -> (w, c, pd + 1))
      (0, 0, 0) e.peers
  in
  let in_flight =
    Hashtbl.fold
      (fun _ jb acc ->
        Array.fold_left
          (fun acc sh ->
            match sh.sh_state with Sh_running _ -> acc + 1 | _ -> acc)
          acc jb.jb_shards)
      e.jobs 0
  in
  let job_doc jb =
    let done_, running, retries =
      Array.fold_left
        (fun (d, r, a) sh ->
          ( (if sh.sh_state = Sh_done then d + 1 else d),
            (match sh.sh_state with Sh_running _ -> r + 1 | _ -> r),
            a + sh.sh_attempts ))
        (0, 0, 0) jb.jb_shards
    in
    Json.Obj
      [
        ("jid", Json.String jb.jb_id);
        ("scenario", Json.String jb.jb_job.Proto.scenario);
        ("cells", Json.Int jb.jb_units);
        ("shards", Json.Int (Array.length jb.jb_shards));
        ("done", Json.Int done_);
        ("running", Json.Int running);
        ("executed", Json.Int jb.jb_executed);
        ("resumed", Json.Int jb.jb_resumed);
        ("retries", Json.Int retries);
        ("watchers", Json.Int (List.length jb.jb_watchers));
      ]
  in
  let peer_doc p =
    let role, busy =
      match p.p_sort with
      | Pending _ -> ("pending", false)
      | Client_peer _ -> ("client", false)
      | Worker_peer w -> (
          ("worker", match w.ws_state with W_busy _ -> true | W_idle -> false))
    in
    Json.Obj
      [
        ("name", Json.String p.p_name);
        ("role", Json.String role);
        ("busy", Json.Bool busy);
        ("bytes_in", Json.Int p.p_bytes_in);
        ("frames_in", Json.Int p.p_frames_in);
        ("frames_out", Json.Int p.p_frames_out);
      ]
  in
  let health =
    Json.Obj
      [
        ("uptime_s", Json.Int (int_of_float (t -. e.started)));
        ("draining", Json.Bool e.draining);
        ("peers", Json.Int (List.length e.peers));
        ("workers", Json.Int nworkers);
        ("clients", Json.Int nclients);
        ("pending", Json.Int npending);
        ("jobs_active", Json.Int (Hashtbl.length e.jobs));
        ("queue_depth", Json.Int (queue_depth e));
        ("in_flight", Json.Int in_flight);
        ( "jobs",
          Json.List
            (List.filter_map
               (fun jid -> Option.map job_doc (Hashtbl.find_opt e.jobs jid))
               e.order) );
        ("peer_detail", Json.List (List.map peer_doc e.peers));
      ]
  in
  let merged = Metrics.create () in
  (match e.cfg.metrics with
  | Some m -> Metrics.merge ~into:merged m
  | None -> ());
  Metrics.merge ~into:merged e.departed;
  List.iter
    (fun p ->
      match p.p_sort with
      | Worker_peer { ws_push = Some m; _ } -> Metrics.merge ~into:merged m
      | _ -> ())
    e.peers;
  Json.Obj [ ("health", health); ("metrics", Metrics.snapshot merged) ]

(* {2 Frame pump} *)

let handle_frame e p v =
  match p.p_sort with
  | Pending _ -> handle_hello e p v
  | Worker_peer w -> (
      match Proto.net_from_worker_of_json v with
      | Ok msg -> handle_worker_msg e p w msg
      | Error m -> peer_gone e p ~reason:("undecodable message: " ^ m))
  | Client_peer c -> (
      match Proto.client_to_server_of_json v with
      | Ok Proto.Cs_pong -> ()
      | Ok Proto.Cs_stats ->
          Metrics.bump e.cfg.metrics "net_stats_requests_total";
          debugf e "%s asked for stats" p.p_name;
          send_client e p (Proto.Sc_stats (stats_doc e))
      | Ok (Proto.Cs_submit { job; resume }) -> handle_submit e p c ~job ~resume
      | Error m -> peer_gone e p ~reason:("undecodable message: " ^ m))

let read_buf = Bytes.create 65536

let rec drain_frames e p =
  if p.p_alive then
    match Frame.next ~now:(now ()) p.p_dec with
    | Ok None -> ()
    | Ok (Some v) ->
        p.p_frames_in <- p.p_frames_in + 1;
        Metrics.bump e.cfg.metrics "net_frames_in_total";
        handle_frame e p v;
        drain_frames e p
    | Error err ->
        peer_gone e p ~reason:(Format.asprintf "%a" Frame.pp_error err)

let handle_readable e p =
  match Unix.read p.p_fd read_buf 0 (Bytes.length read_buf) with
  | 0 -> peer_gone e p ~reason:"closed its end"
  | n ->
      let t = now () in
      p.p_last <- t;
      p.p_pinged <- false;
      p.p_bytes_in <- p.p_bytes_in + n;
      Metrics.bump e.cfg.metrics ~by:n "net_bytes_in_total";
      let (win_start, win_bytes), over =
        Policy.rate_check ~limit_per_s:e.cfg.rate_limit
          ~window_start:p.p_win_start ~window_bytes:p.p_win_bytes ~arrived:n
          ~now:t
      in
      p.p_win_start <- win_start;
      p.p_win_bytes <- win_bytes;
      if over then peer_gone e p ~reason:"byte-rate cap exceeded"
      else begin
        Frame.feed ~now:t p.p_dec read_buf n;
        drain_frames e p
      end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      peer_gone e p ~reason:"connection reset"

(* {2 Scheduling, timers} *)

let deal e =
  if not e.draining then begin
    let t = now () in
    let eligible jb sh =
      sh.sh_state = Sh_pending && sh.sh_not_before <= t && sh.sh_lo <= jb.jb_cut
    in
    let next_shard_for w =
      (* FIFO over jobs, in-order over shards, gated on this worker
         having acked the job's plan. *)
      List.find_map
        (fun jid ->
          match Hashtbl.find_opt e.jobs jid with
          | Some jb when Hashtbl.mem w.ws_acked jid ->
              Array.find_opt (eligible jb) jb.jb_shards
              |> Option.map (fun sh -> (jb, sh))
          | _ -> None)
        e.order
    in
    List.iter
      (fun p ->
        match p.p_sort with
        | Worker_peer w when p.p_alive && w.ws_state = W_idle -> (
            match next_shard_for w with
            | None -> ()
            | Some (jb, sh) ->
                let dispatch_start = Span.now_us () in
                send_worker e p
                  (Proto.Nw_assign
                     {
                       jid = jb.jb_id;
                       shard = sh.sh_id;
                       lo = sh.sh_lo;
                       hi = sh.sh_hi;
                     });
                if p.p_alive then begin
                  debugf e "job %s shard %d dealt to %s" jb.jb_id sh.sh_id
                    p.p_name;
                  Span.emit e.cfg.spans ~phase:"dispatch" ~job:jb.jb_tag
                    ~shard:sh.sh_id ~start_us:dispatch_start;
                  sh.sh_state <- Sh_running p.p_id;
                  w.ws_state <-
                    W_busy
                      {
                        jid = jb.jb_id;
                        shard = sh.sh_id;
                        deadline = t +. e.cfg.shard_timeout;
                      }
                end)
        | _ -> ())
      e.peers;
    Metrics.record e.cfg.metrics "net_queue_depth" (queue_depth e)
  end

let check_timers e =
  let t = now () in
  List.iter
    (fun p ->
      if p.p_alive then
        match p.p_sort with
        | Pending deadline ->
            if t > deadline then peer_gone e p ~reason:"handshake timeout"
        | Worker_peer w -> (
            (match w.ws_state with
            | W_busy { jid; shard; deadline } when t > deadline ->
                peer_gone e p
                  ~reason:
                    (Printf.sprintf "job %s shard %d timed out" jid shard)
            | _ -> ());
            if p.p_alive then
              match
                Policy.heartbeat ~timeout:e.cfg.heartbeat_timeout
                  ~silent:(t -. p.p_last) ~pinged:p.p_pinged
              with
              | Policy.Dead -> peer_gone e p ~reason:"heartbeat timeout"
              | Policy.Ping ->
                  send_worker e p Proto.Nw_ping;
                  p.p_pinged <- true
              | Policy.Wait -> ())
        | Client_peer _ -> (
            match
              Policy.heartbeat ~timeout:e.cfg.heartbeat_timeout
                ~silent:(t -. p.p_last) ~pinged:p.p_pinged
            with
            | Policy.Dead -> peer_gone e p ~reason:"heartbeat timeout"
            | Policy.Ping ->
                send_client e p Proto.Sc_ping;
                p.p_pinged <- true
            | Policy.Wait -> ()))
    e.peers

let next_timeout e =
  let t = now () in
  let d = ref 1.0 in
  let note x = if x < !d then d := Float.max x 0.01 in
  List.iter
    (fun p ->
      (match p.p_sort with
      | Pending deadline -> note (deadline -. t)
      | Worker_peer w -> (
          match w.ws_state with
          | W_busy { deadline; _ } -> note (deadline -. t)
          | W_idle -> ())
      | Client_peer _ -> ());
      match p.p_sort with
      | Pending _ -> ()
      | _ ->
          note
            (Policy.heartbeat_deadline ~timeout:e.cfg.heartbeat_timeout
               ~silent:(t -. p.p_last) ~pinged:p.p_pinged))
    e.peers;
  Hashtbl.iter
    (fun _ jb ->
      Array.iter
        (fun sh ->
          if sh.sh_state = Sh_pending && sh.sh_not_before > t then
            note (sh.sh_not_before -. t))
        jb.jb_shards)
    e.jobs;
  !d

let accept_peers e =
  let rec go () =
    match Unix.accept e.listener with
    | fd, addr ->
        Unix.set_close_on_exec fd;
        let p =
          {
            p_id = e.next_pid;
            p_fd = fd;
            p_dec =
              Frame.decoder ~stall_timeout:e.cfg.frame_stall_timeout ();
            p_name =
              Printf.sprintf "peer %d (%s)" e.next_pid
                (Net.string_of_sockaddr addr);
            p_sort = Pending (now () +. e.cfg.handshake_timeout);
            p_last = now ();
            p_pinged = false;
            p_alive = true;
            p_win_start = now ();
            p_win_bytes = 0;
            p_bytes_in = 0;
            p_frames_in = 0;
            p_frames_out = 0;
          }
        in
        e.next_pid <- e.next_pid + 1;
        e.peers <- e.peers @ [ p ];
        Metrics.bump e.cfg.metrics "net_connections_total";
        gauge_peers e;
        logf e "%s connected" p.p_name;
        go ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go ()
  in
  go ()

(* {2 Drain and main loop} *)

let begin_drain e =
  e.draining <- true;
  logf e "draining: no new connections or shards; checkpointing in-flight work";
  close_quiet e.listener;
  (* Tell every client now: their jobs are journalled and resumable. *)
  List.iter
    (fun p ->
      match p.p_sort with
      | Client_peer _ -> send_client e p Proto.Sc_draining
      | _ -> ())
    e.peers

let in_flight e =
  Hashtbl.fold
    (fun _ jb acc ->
      Array.fold_left
        (fun acc sh ->
          match sh.sh_state with Sh_running _ -> acc + 1 | _ -> acc)
        acc jb.jb_shards)
    e.jobs 0

let shutdown e =
  List.iter
    (fun p ->
      match p.p_sort with
      | Worker_peer _ -> send_worker e p Proto.Nw_shutdown
      | _ -> ())
    e.peers;
  List.iter (fun p -> close_quiet p.p_fd) e.peers;
  e.peers <- [];
  Hashtbl.iter (fun _ jb -> Journal.close jb.jb_journal) e.jobs;
  Hashtbl.reset e.jobs;
  e.order <- []

let rec loop e =
  if !(e.term) && not e.draining then begin_drain e;
  if e.draining && in_flight e = 0 then shutdown e
  else begin
    deal e;
    let fds =
      (if e.draining then [] else [ e.listener ])
      @ List.filter_map
          (fun p -> if p.p_alive then Some p.p_fd else None)
          e.peers
    in
    let readable, _, _ =
      match Unix.select fds [] [] (next_timeout e) with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if (not e.draining) && List.mem e.listener readable then accept_peers e;
    let snapshot = e.peers in
    List.iter
      (fun p -> if p.p_alive && List.mem p.p_fd readable then
          handle_readable e p)
      snapshot;
    check_timers e;
    loop e
  end

let serve ?on_listen cfg ~lookup addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match Net.listen addr with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s"
           (Net.string_of_sockaddr addr)
           (Unix.error_message err))
  | listener, port ->
      Unix.set_nonblock listener;
      Option.iter (fun f -> f port) on_listen;
      let term = ref false in
      let prev_term =
        Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true))
      in
      let e =
        {
          cfg;
          lookup;
          listener;
          term;
          jobs = Hashtbl.create 8;
          order = [];
          peers = [];
          next_pid = 0;
          draining = false;
          started = now ();
          departed = Metrics.create ();
        }
      in
      let result =
        match loop e with
        | () -> Ok ()
        | exception exn ->
            shutdown e;
            close_quiet listener;
            Error (Printexc.to_string exn)
      in
      Sys.set_signal Sys.sigterm prev_term;
      result
