(** Message vocabulary of the coordinator/worker protocol.

    The protocol leans entirely on determinism: a job description names
    a scenario plus the sweep/explore parameters, and {e both} sides
    independently expand it into the same {!Svm.Explore.sweep_plan} or
    {!Svm.Explore.plan} (planning is a pure function of the
    parameters). Nothing structural ever crosses the wire — a shard is
    a half-open index range into the shared plan, and a shard result is
    the minimal plain data the deterministic merge needs: one verdict
    tag per sweep cell, or one seven-field summary per explore task.
    Counterexamples, violations and replay artifacts are {e never}
    serialized; the coordinator recovers them by re-running the single
    finding cell locally.

    All decoders are total and return [result] — worker input is wire
    bytes from an arbitrary peer. *)

type sweep_params = {
  sw_tiers : string list;  (** fault kind names ({!Svm.Adversary}) *)
  sw_max_faults : int;
  sw_op_window : int;
  sw_max_runs : int;
  sw_budget : int option;
}

type explore_params = {
  ex_max_steps : int;
  ex_max_crashes : int;
  ex_max_runs : int;
  ex_dedup : bool;
}

type mode = Sweep of sweep_params | Explore of explore_params

type job = {
  scenario : string;  (** registered scenario name *)
  nprocs : int option;  (** process-count override, already resolved *)
  mode : mode;
}

val job_to_json : job -> Svm.Json.t
val job_of_json : Svm.Json.t -> (job, string) result

val job_fingerprint : job -> string
(** Canonical one-line encoding, used to match a [--resume] request
    against the job recorded in a journal. *)

(** {1 Messages} *)

type to_worker =
  | Hello of job  (** first frame; the worker builds its plan from it *)
  | Assign of { shard : int; lo : int; hi : int }
      (** compute cells/tasks [lo..hi-1] of the plan *)
  | Ping  (** liveness probe; answer [Pong] even mid-shard *)
  | Shutdown  (** exit cleanly *)

type from_worker =
  | Hello_ok of { cells : int }
      (** plan built; [cells] must match the coordinator's own count —
          a mismatch means the two sides computed different plans and
          determinism is broken, so the coordinator aborts *)
  | Hello_err of string  (** the job does not resolve to a plan *)
  | Pong
  | Progress of { shard : int; completed : int }
      (** heartbeat emitted every few cells of a long shard *)
  | Result of { shard : int; payload : Svm.Json.t }

val to_worker_to_json : to_worker -> Svm.Json.t
val to_worker_of_json : Svm.Json.t -> (to_worker, string) result
val from_worker_to_json : from_worker -> Svm.Json.t
val from_worker_of_json : Svm.Json.t -> (from_worker, string) result

(** {1 Shard payload codecs} *)

val tag_of_verdict : Svm.Explore.verdict -> char
(** ['C'] clean, ['D'] deadlocked, ['V'] violating. A sweep shard's
    payload is the string of tags for its cell range; the violation
    payload itself stays behind — the coordinator re-runs the cell. *)

val verdict_tag_ok : char -> bool

val summary_to_json : Svm.Explore.task_summary -> Svm.Json.t
(** Seven ints: leaf, runs, truncated, cex, pruned states, pruned
    commutes, exhausted. An explore shard's payload is the list of
    summaries for its task range. *)

val summary_of_json : Svm.Json.t -> (Svm.Explore.task_summary, string) result
