(** Message vocabulary of the coordinator/worker protocol.

    The protocol leans entirely on determinism: a job description names
    a scenario plus the sweep/explore parameters, and {e both} sides
    independently expand it into the same {!Svm.Explore.sweep_plan} or
    {!Svm.Explore.plan} (planning is a pure function of the
    parameters). Nothing structural ever crosses the wire — a shard is
    a half-open index range into the shared plan, and a shard result is
    the minimal plain data the deterministic merge needs: one verdict
    tag per sweep cell, or one seven-field summary per explore task.
    Counterexamples, violations and replay artifacts are {e never}
    serialized; the coordinator recovers them by re-running the single
    finding cell locally.

    All decoders are total and return [result] — worker input is wire
    bytes from an arbitrary peer. *)

type sweep_params = {
  sw_tiers : string list;  (** fault kind names ({!Svm.Adversary}) *)
  sw_max_faults : int;
  sw_op_window : int;
  sw_max_runs : int;
  sw_budget : int option;
}

type explore_params = {
  ex_max_steps : int;
  ex_max_crashes : int;
  ex_max_runs : int;
  ex_dedup : bool;
}

type mode = Sweep of sweep_params | Explore of explore_params

type job = {
  scenario : string;  (** registered scenario name *)
  nprocs : int option;  (** process-count override, already resolved *)
  source : string option;
      (** DSL scenario source (protocol v3): when present, both sides
          compile the job from it instead of the builtin registry. The
          declared scenario name must match [scenario]. Size-capped at
          {!max_source_bytes} by the decoder. *)
  mode : mode;
}

val max_source_bytes : int
(** Decoder cap on [job.source] (equal to [Sdl.Compile.max_source_bytes]). *)

val job_to_json : job -> Svm.Json.t
val job_of_json : Svm.Json.t -> (job, string) result

val job_fingerprint : job -> string
(** Canonical one-line encoding, used to match a [--resume] request
    against the job recorded in a journal. *)

(** {1 Messages} *)

type to_worker =
  | Hello of job  (** first frame; the worker builds its plan from it *)
  | Assign of { shard : int; lo : int; hi : int }
      (** compute cells/tasks [lo..hi-1] of the plan *)
  | Ping  (** liveness probe; answer [Pong] even mid-shard *)
  | Shutdown  (** exit cleanly *)

type from_worker =
  | Hello_ok of { cells : int }
      (** plan built; [cells] must match the coordinator's own count —
          a mismatch means the two sides computed different plans and
          determinism is broken, so the coordinator aborts *)
  | Hello_err of string  (** the job does not resolve to a plan *)
  | Pong
  | Progress of { shard : int; completed : int }
      (** heartbeat emitted every few cells of a long shard *)
  | Result of { shard : int; payload : Svm.Json.t }

val to_worker_to_json : to_worker -> Svm.Json.t
val to_worker_of_json : Svm.Json.t -> (to_worker, string) result
val from_worker_to_json : from_worker -> Svm.Json.t
val from_worker_of_json : Svm.Json.t -> (from_worker, string) result

(** {1 Shard payload codecs} *)

val tag_of_verdict : Svm.Explore.verdict -> char
(** ['C'] clean, ['D'] deadlocked, ['V'] violating. A sweep shard's
    payload is the string of tags for its cell range; the violation
    payload itself stays behind — the coordinator re-runs the cell. *)

val verdict_tag_ok : char -> bool

val summary_to_json : Svm.Explore.task_summary -> Svm.Json.t
(** Seven ints: leaf, runs, truncated, cex, pruned states, pruned
    commutes, exhausted. An explore shard's payload is the list of
    summaries for its task range. *)

val summary_of_json : Svm.Json.t -> (Svm.Explore.task_summary, string) result

(** {1 Shard payload validation}

    Total validators over wire payloads, shared by the fork coordinator
    and the TCP job queue. [Ok (Some i)] reports the absolute index of
    the first merge-stopping finding inside the shard. *)

val check_sweep_payload :
  lo:int -> hi:int -> Svm.Json.t -> (int option, string) result

val check_explore_payload :
  lo:int -> hi:int -> Svm.Json.t -> (int option, string) result

(** {1 Network handshake}

    The first frame on any TCP connection, in either direction of
    dialing: the connecting side introduces itself with magic, protocol
    version, role and its registry fingerprint; the server answers
    [Welcome] or a typed [Rejected] and closes. A peer that speaks
    anything else — or nothing, past the handshake deadline — is cut
    without ever touching a job. *)

val net_magic : string
val net_version : int

type role = Worker_role | Client_role

val role_name : role -> string

type hello = {
  h_version : int;
  h_role : role;
  h_fingerprint : string;
      (** scenario-registry fingerprint: both sides must expand a job
          into the identical plan, so a worker built against a
          different registry is rejected at the door instead of
          breaking determinism mid-job *)
}

val hello_to_json : hello -> Svm.Json.t
val hello_of_json : Svm.Json.t -> (hello, string) result

type welcome = Welcome | Rejected of string

val welcome_to_json : welcome -> Svm.Json.t
val welcome_of_json : Svm.Json.t -> (welcome, string) result

(** {1 Network worker session}

    Like the socketpair protocol, but job-tagged: a TCP worker serves
    many jobs over one connection, opening each on first assignment. *)

type net_to_worker =
  | Nw_job of { jid : string; job : job }
      (** expand this job; reply [Nf_job_ok] with the plan size *)
  | Nw_assign of { jid : string; shard : int; lo : int; hi : int }
  | Nw_ping
  | Nw_shutdown

type net_from_worker =
  | Nf_job_ok of { jid : string; cells : int }
  | Nf_job_err of { jid : string; msg : string }
  | Nf_pong of { metrics : Svm.Json.t option }
      (** v2: a pong may piggyback the worker's {!Svm.Metrics} snapshot,
          so the server aggregates fleet telemetry on the heartbeat
          cadence it already pays for — no extra frames, no extra
          timers, and a silent worker's staleness is visible as a
          missing push *)
  | Nf_progress of { jid : string; shard : int; completed : int }
  | Nf_result of { jid : string; shard : int; payload : Svm.Json.t }

val net_to_worker_to_json : net_to_worker -> Svm.Json.t
val net_to_worker_of_json : Svm.Json.t -> (net_to_worker, string) result
val net_from_worker_to_json : net_from_worker -> Svm.Json.t
val net_from_worker_of_json : Svm.Json.t -> (net_from_worker, string) result

(** {1 Network client session}

    A client submits one fully-resolved job (optionally resuming a
    journalled job id) and then receives every completed shard payload
    — journal-restored ones first — followed by a terminal [Sc_done],
    [Sc_failed] or [Sc_draining]. The client merges locally with the
    same {!Svm.Explore} merge the in-process path uses, which is what
    makes its stdout and artifacts byte-identical. *)

type client_to_server =
  | Cs_submit of { job : job; resume : string option }
  | Cs_stats
      (** v2: ask for the live stats document; answered immediately
          with {!Sc_stats} without disturbing running jobs *)
  | Cs_pong

type server_to_client =
  | Sc_accepted of { jid : string; cells : int; shard_size : int }
  | Sc_rejected of string
  | Sc_shard of { shard : int; payload : Svm.Json.t }
  | Sc_done of { executed : int; resumed : int }
  | Sc_failed of string
  | Sc_stats of Svm.Json.t
      (** v2 reply to {!Cs_stats}: a ["health"] summary (uptime, drain
          state, peers, queue depth, per-job progress) plus a
          ["metrics"] registry snapshot — the server's own counters
          folded with every worker-pushed registry via
          {!Svm.Metrics.merge} *)
  | Sc_draining
      (** server is draining on SIGTERM; the job is checkpointed in its
          journal and resumable by id *)
  | Sc_ping

val client_to_server_to_json : client_to_server -> Svm.Json.t
val client_to_server_of_json : Svm.Json.t -> (client_to_server, string) result
val server_to_client_to_json : server_to_client -> Svm.Json.t
val server_to_client_of_json : Svm.Json.t -> (server_to_client, string) result
