(** The coordinator: fork workers, deal shards, survive their deaths,
    merge deterministically.

    The coordinator re-execs the worker binary [config.exe] with the
    single argument [work], wiring one socketpair end to the child's
    stdin and stdout, and drives all workers from a single
    [Unix.select] loop. Work is dealt as shards — contiguous index
    ranges of the shared {!Svm.Explore} plan — and results are merged
    strictly in index order by the {e same} merge functions the
    in-process paths use ({!Svm.Explore.sweep_merge},
    {!Svm.Explore.merge_plan}), which is why the outcome is bit-for-bit
    identical to a [--jobs] run no matter how chaotically workers die.

    Failure handling, in escalating order:
    - a worker silent past half the heartbeat timeout is pinged; past
      the full timeout it is SIGKILLed;
    - a shard unfinished past [shard_timeout] gets its worker
      SIGKILLed;
    - a dead worker's shard goes back in the queue with exponential
      backoff, and a replacement worker is forked;
    - a shard that has killed [max_retries + 1] workers is declared
      {e hostile} and the run aborts with a typed error — it is
      reported, never retried forever.

    With a journal enabled, every completed shard is flushed to an
    append-only log before it is acknowledged, so a coordinator killed
    at any instant can be resumed by job id without re-running finished
    shards. *)

type config = {
  workers : int;  (** worker processes to keep alive *)
  shard_size : int option;  (** cells per shard; [None] = derived *)
  shard_timeout : float;  (** seconds before a shard's worker is shot *)
  heartbeat_timeout : float;  (** seconds of silence before death *)
  max_retries : int;  (** failed attempts tolerated per shard *)
  backoff : float;  (** base reassignment delay, doubled per failure *)
  exe : string;  (** worker binary, re-exec'd as [exe work] *)
  journal_dir : string option;  (** [Some dir] enables the journal *)
  resume : string option;  (** job id to resume (needs [journal_dir]) *)
  chaos_kill_shard : (int * int) option;
      (** test hook: [(shard, n)] SIGKILLs the assigned worker the
          first [n] times that shard is dealt out *)
  stop_after_shards : int option;
      (** test hook: suspend after that many results this session *)
  log : Svm.Log.t;
      (** leveled diagnostics: worker deaths and requeues at [Warn],
          lifecycle at [Info] *)
}

val default_config : ?workers:int -> ?exe:string -> unit -> config
(** Defaults: 2 workers, derived shard size, 120 s shard timeout, 20 s
    heartbeat, 2 retries, 50 ms backoff, [Sys.executable_name], no
    journal, no chaos. *)

type stats = {
  job_id : string option;
  shards : int;
  shard_size : int;
  resumed : int;  (** shards restored from the journal *)
  executed : int;  (** shard results received this session *)
  spawned : int;  (** workers forked, including replacements *)
  killed : int;  (** workers SIGKILLed (timeouts, chaos) *)
  reassigned : int;  (** shard attempts lost to worker deaths *)
}

type 'a outcome =
  | Complete of 'a
  | Suspended of string
      (** stopped early ([stop_after_shards]); the string is the job id
          to pass back as [resume] *)

val sweep :
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  config ->
  job:Proto.job ->
  plan:Svm.Univ.t Svm.Explore.sweep_plan ->
  unit ->
  (Svm.Explore.sweep_outcome outcome * stats, string) result
(** Distribute the sweep's cells. [plan] must be the expansion of [job]
    — the workers rebuild exactly it from the [Hello]; the coordinator
    cross-checks cell counts and aborts on mismatch. Violating cells
    come back as bare tags; the coordinator re-runs the first one
    locally inside {!Svm.Explore.sweep_merge} to recover the violation,
    shrink it and write the replay artifact, so those artifacts are
    byte-identical to an in-process run's. *)

val explore :
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  config ->
  job:Proto.job ->
  plan:Svm.Univ.t Svm.Explore.plan ->
  unit ->
  (Svm.Univ.t Svm.Explore.result outcome * stats, string) result
(** Distribute the exploration's frontier tasks; summaries merge
    through {!Svm.Explore.merge_plan}, which re-runs the one
    counterexample task locally to recover the full run record. *)
