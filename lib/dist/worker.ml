type instance =
  | Sweep_instance of Svm.Univ.t Svm.Explore.sweep_plan
  | Explore_instance of Svm.Univ.t Svm.Explore.plan

exception Quit of int

(* Emit a Progress heartbeat and honour control frames this often. *)
let heartbeat_every = 32

let send out_fd msg =
  try Frame.write out_fd (Proto.from_worker_to_json msg)
  with Unix.Unix_error _ -> raise (Quit 0) (* coordinator is gone *)

let recv in_fd =
  match Frame.read in_fd with
  | Ok v -> (
      match Proto.to_worker_of_json v with
      | Ok m -> m
      | Error _ -> raise (Quit 2))
  | Error Frame.Closed -> raise (Quit 0)
  | Error _ -> raise (Quit 2)

(* Between heartbeats the worker is heads-down computing; this gives
   control frames (Ping during a slow shard, Shutdown during a shard
   the coordinator no longer needs) a chance to be honoured. *)
let poll_control in_fd out_fd =
  match Unix.select [ in_fd ] [] [] 0.0 with
  | [], _, _ -> ()
  | _ -> (
      match recv in_fd with
      | Proto.Ping -> send out_fd Proto.Pong
      | Proto.Shutdown -> raise (Quit 0)
      | Proto.Hello _ | Proto.Assign _ -> raise (Quit 2))
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let cells_of_instance = function
  | Sweep_instance p -> Svm.Explore.sweep_cells p
  | Explore_instance p -> Svm.Explore.plan_tasks p

(* Compute one shard's payload, transport-free: [tick completed] fires
   every {!heartbeat_every} cells so the caller can emit progress and
   poll control frames, whatever its wire is. *)
let compute_shard instance ~lo ~hi ~tick =
  let tick i =
    if (i - lo + 1) mod heartbeat_every = 0 then tick (i - lo + 1)
  in
  match instance with
  | Sweep_instance p ->
      let b = Buffer.create (hi - lo) in
      for i = lo to hi - 1 do
        Buffer.add_char b (Proto.tag_of_verdict (Svm.Explore.sweep_cell p i));
        tick i
      done;
      Svm.Json.String (Buffer.contents b)
  | Explore_instance p ->
      let out = ref [] in
      for i = lo to hi - 1 do
        let summary, _cex = Svm.Explore.task_outcome p i in
        out := Proto.summary_to_json summary :: !out;
        tick i
      done;
      Svm.Json.List (List.rev !out)

let serve ~lookup in_fd out_fd =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  try
    let instance =
      match recv in_fd with
      | Proto.Hello job -> (
          match lookup job with
          | Ok instance ->
              send out_fd
                (Proto.Hello_ok { cells = cells_of_instance instance });
              instance
          | Error msg ->
              send out_fd (Proto.Hello_err msg);
              raise (Quit 2))
      | Proto.Assign _ | Proto.Ping | Proto.Shutdown -> raise (Quit 2)
    in
    let cells = cells_of_instance instance in
    let rec loop () =
      (match recv in_fd with
      | Proto.Ping -> send out_fd Proto.Pong
      | Proto.Shutdown -> raise (Quit 0)
      | Proto.Hello _ -> raise (Quit 2)
      | Proto.Assign { shard; lo; hi } ->
          if hi > cells then raise (Quit 2);
          let tick completed =
            send out_fd (Proto.Progress { shard; completed });
            poll_control in_fd out_fd
          in
          let payload = compute_shard instance ~lo ~hi ~tick in
          send out_fd (Proto.Result { shard; payload }));
      loop ()
    in
    loop ()
  with
  | Quit code -> code
  | Unix.Unix_error _ -> 0 (* coordinator vanished under us *)
  | _ -> 3
