module Json = Svm.Json

type config = {
  workers : int;
  shard_size : int option;
  shard_timeout : float;
  heartbeat_timeout : float;
  max_retries : int;
  backoff : float;
  exe : string;
  journal_dir : string option;
  resume : string option;
  chaos_kill_shard : (int * int) option;
  stop_after_shards : int option;
  log : Svm.Log.t;
}

let default_config ?(workers = 2) ?(exe = Sys.executable_name) () =
  {
    workers;
    shard_size = None;
    shard_timeout = 120.;
    heartbeat_timeout = 20.;
    max_retries = 2;
    backoff = 0.05;
    exe;
    journal_dir = None;
    resume = None;
    chaos_kill_shard = None;
    stop_after_shards = None;
    log = Svm.Log.null;
  }

type stats = {
  job_id : string option;
  shards : int;
  shard_size : int;
  resumed : int;
  executed : int;
  spawned : int;
  killed : int;
  reassigned : int;
}

type 'a outcome = Complete of 'a | Suspended of string

(* {2 Engine internals} *)

exception Fatal of string
exception Suspend

type wstate = Handshaking | Idle | Busy of { shard : int; deadline : float }

type worker = {
  w_id : int;
  w_pid : int;
  w_fd : Unix.file_descr;
  w_dec : Frame.decoder;
  mutable w_state : wstate;
  mutable w_last : float;  (** last time we heard anything from it *)
  mutable w_pinged : bool;
  mutable w_alive : bool;
}

type shard_state = Pending | Running of int | Done

type shard = {
  sh_id : int;
  sh_lo : int;
  sh_hi : int;
  mutable sh_state : shard_state;
  mutable sh_not_before : float;  (** backoff gate after a failure *)
  mutable sh_attempts : int;  (** attempts that ended in a dead worker *)
}

type engine = {
  cfg : config;
  job : Proto.job;
  units : int;
  check : lo:int -> hi:int -> Json.t -> (int option, string) result;
      (** validate a shard payload; [Ok (Some i)] reports the absolute
          index of the first merge-stopping finding inside it *)
  shards : shard array;
  payloads : Json.t option array;
  journal : Journal.t option;
  mutable live : worker list;
  mutable next_wid : int;
  mutable cut : int;
      (** absolute index of the first finding seen so far; shards lying
          entirely past it can never be consulted by the in-order merge,
          so they are not dispatched *)
  mutable chaos_left : int;
  mutable hs_failures : int;
  mutable st_resumed : int;
  mutable st_executed : int;
  mutable st_spawned : int;
  mutable st_killed : int;
  mutable st_reassigned : int;
}

let now () = Unix.gettimeofday ()

let logf e fmt = Svm.Log.infof e.cfg.log fmt
let warnf e fmt = Svm.Log.warnf e.cfg.log fmt

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let shard_failed e sh =
  sh.sh_attempts <- sh.sh_attempts + 1;
  e.st_reassigned <- e.st_reassigned + 1;
  match
    Policy.retry ~max_retries:e.cfg.max_retries ~base:e.cfg.backoff
      ~attempts:sh.sh_attempts
  with
  | Policy.Hostile ->
      Option.iter (fun j -> Journal.append_hostile j ~shard:sh.sh_id) e.journal;
      raise
        (Fatal
           (Printf.sprintf
              "shard %d [%d,%d) is hostile: it took down %d workers" sh.sh_id
              sh.sh_lo sh.sh_hi sh.sh_attempts))
  | Policy.Requeue delay ->
      sh.sh_state <- Pending;
      sh.sh_not_before <- now () +. delay;
      warnf e "shard %d back in the queue (lost attempt %d)" sh.sh_id
        sh.sh_attempts

let worker_dead e w ~reason =
  if w.w_alive then begin
    w.w_alive <- false;
    e.live <- List.filter (fun x -> x.w_id <> w.w_id) e.live;
    (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
    reap w.w_pid;
    warnf e "worker %d (pid %d) is gone: %s" w.w_id w.w_pid reason;
    match w.w_state with
    | Busy { shard; _ } -> shard_failed e e.shards.(shard)
    | Handshaking ->
        e.hs_failures <- e.hs_failures + 1;
        if e.hs_failures > (2 * e.cfg.workers) + 4 then
          raise
            (Fatal
               "workers keep dying before completing the handshake — is the \
                worker binary runnable?")
    | Idle -> ()
  end

let kill_worker e w ~reason =
  if w.w_alive then begin
    (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    e.st_killed <- e.st_killed + 1;
    worker_dead e w ~reason
  end

let send_to e w msg =
  try
    Frame.write w.w_fd (Proto.to_worker_to_json msg);
    true
  with Unix.Unix_error _ ->
    worker_dead e w ~reason:"write failed";
    false

let handle_msg e w msg =
  match msg with
  | Proto.Hello_ok { cells } ->
      if cells <> e.units then
        raise
          (Fatal
             (Printf.sprintf
                "worker %d planned %d cells but the coordinator planned %d — \
                 the two sides expanded the job differently, determinism is \
                 broken"
                w.w_id cells e.units));
      (match w.w_state with Handshaking -> w.w_state <- Idle | _ -> ())
  | Proto.Hello_err m ->
      raise (Fatal (Printf.sprintf "worker %d rejected the job: %s" w.w_id m))
  | Proto.Pong -> w.w_pinged <- false
  | Proto.Progress _ -> ()
  | Proto.Result { shard; payload } ->
      if shard < 0 || shard >= Array.length e.shards then
        kill_worker e w ~reason:"result for an unknown shard"
      else begin
        let sh = e.shards.(shard) in
        let owned =
          match (sh.sh_state, w.w_state) with
          | Running wid, Busy { shard = s; _ } -> wid = w.w_id && s = shard
          | _ -> false
        in
        (* A result for a shard this worker no longer owns is stale
           (the shard was reassigned after its presumed death): drop. *)
        if owned then begin
          match e.check ~lo:sh.sh_lo ~hi:sh.sh_hi payload with
          | Error m ->
              kill_worker e w
                ~reason:(Printf.sprintf "bad payload for shard %d: %s" shard m)
          | Ok finding ->
              e.payloads.(shard) <- Some payload;
              sh.sh_state <- Done;
              Option.iter
                (fun j -> Journal.append_shard j ~shard ~payload)
                e.journal;
              e.st_executed <- e.st_executed + 1;
              w.w_state <- Idle;
              (match finding with
              | Some abs when abs < e.cut ->
                  e.cut <- abs;
                  logf e "finding at cell %d (shard %d); cutting the tail" abs
                    shard
              | _ -> ());
              (match e.cfg.stop_after_shards with
              | Some n when e.st_executed >= n -> raise Suspend
              | _ -> ())
        end
      end

let read_buf = Bytes.create 65536

let rec drain e w =
  if w.w_alive then
    match Frame.next w.w_dec with
    | Ok None -> ()
    | Ok (Some v) -> (
        match Proto.from_worker_of_json v with
        | Ok msg ->
            handle_msg e w msg;
            drain e w
        | Error m -> kill_worker e w ~reason:("undecodable message: " ^ m))
    | Error err ->
        kill_worker e w ~reason:(Format.asprintf "%a" Frame.pp_error err)

let handle_readable e w =
  match Unix.read w.w_fd read_buf 0 (Bytes.length read_buf) with
  | 0 -> worker_dead e w ~reason:"closed its end"
  | n ->
      w.w_last <- now ();
      w.w_pinged <- false;
      Frame.feed w.w_dec read_buf n;
      drain e w
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      worker_dead e w ~reason:"connection reset"

let spawn e =
  let fd_c, fd_w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Coordinator ends must not leak into later workers: a child holding
     a copy of another worker's socket would mask that worker's EOF. *)
  Unix.set_close_on_exec fd_c;
  let pid =
    Unix.create_process e.cfg.exe [| e.cfg.exe; "work" |] fd_w fd_w Unix.stderr
  in
  Unix.close fd_w;
  let w =
    {
      w_id = e.next_wid;
      w_pid = pid;
      w_fd = fd_c;
      w_dec = Frame.decoder ();
      w_state = Handshaking;
      w_last = now ();
      w_pinged = false;
      w_alive = true;
    }
  in
  e.next_wid <- e.next_wid + 1;
  e.st_spawned <- e.st_spawned + 1;
  e.live <- e.live @ [ w ];
  logf e "spawned worker %d (pid %d)" w.w_id pid;
  ignore (send_to e w (Proto.Hello e.job))

let assign e =
  let t = now () in
  let eligible sh =
    sh.sh_state = Pending && sh.sh_not_before <= t && sh.sh_lo <= e.cut
  in
  let rec next_shard i =
    if i >= Array.length e.shards then None
    else if eligible e.shards.(i) then Some e.shards.(i)
    else next_shard (i + 1)
  in
  List.iter
    (fun w ->
      if w.w_alive && w.w_state = Idle then
        match next_shard 0 with
        | None -> ()
        | Some sh ->
            if
              send_to e w
                (Proto.Assign { shard = sh.sh_id; lo = sh.sh_lo; hi = sh.sh_hi })
            then begin
              sh.sh_state <- Running w.w_id;
              w.w_state <-
                Busy { shard = sh.sh_id; deadline = t +. e.cfg.shard_timeout };
              match e.cfg.chaos_kill_shard with
              | Some (k, _) when k = sh.sh_id && e.chaos_left > 0 ->
                  e.chaos_left <- e.chaos_left - 1;
                  kill_worker e w ~reason:"chaos"
              | _ -> ()
            end)
    e.live

let check_timers e =
  let t = now () in
  List.iter
    (fun w ->
      if w.w_alive then begin
        (match w.w_state with
        | Busy { deadline; shard } when t > deadline ->
            kill_worker e w
              ~reason:(Printf.sprintf "shard %d timed out" shard)
        | _ -> ());
        if w.w_alive then begin
          let silent = t -. w.w_last in
          match
            Policy.heartbeat ~timeout:e.cfg.heartbeat_timeout ~silent
              ~pinged:w.w_pinged
          with
          | Policy.Dead -> kill_worker e w ~reason:"heartbeat timeout"
          | Policy.Ping -> if send_to e w Proto.Ping then w.w_pinged <- true
          | Policy.Wait -> ()
        end
      end)
    e.live

let remaining e =
  Array.fold_left
    (fun acc sh ->
      if sh.sh_state <> Done && sh.sh_lo <= e.cut then acc + 1 else acc)
    0 e.shards

let respawn e =
  let target = min e.cfg.workers (remaining e) in
  while List.length e.live < target do
    spawn e
  done

(* Sleep exactly until the next deadline we own: a busy shard's timeout,
   a heartbeat edge, or a backoff gate opening. *)
let next_timeout e =
  let t = now () in
  let d = ref 1.0 in
  let note x = if x < !d then d := Float.max x 0.01 in
  List.iter
    (fun w ->
      (match w.w_state with
      | Busy { deadline; _ } -> note (deadline -. t)
      | _ -> ());
      let silent = t -. w.w_last in
      note
        (Policy.heartbeat_deadline ~timeout:e.cfg.heartbeat_timeout ~silent
           ~pinged:w.w_pinged))
    e.live;
  Array.iter
    (fun sh ->
      if sh.sh_state = Pending && sh.sh_not_before > t then
        note (sh.sh_not_before -. t))
    e.shards;
  !d

let rec loop e =
  if remaining e > 0 then begin
    respawn e;
    assign e;
    let fds =
      List.filter_map (fun w -> if w.w_alive then Some w.w_fd else None) e.live
    in
    let readable, _, _ =
      if fds = [] then ([], [], [])
      else
        try Unix.select fds [] [] (next_timeout e)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let snapshot = e.live in
    List.iter
      (fun w ->
        if w.w_alive && List.mem w.w_fd readable then handle_readable e w)
      snapshot;
    check_timers e;
    loop e
  end

let shutdown e =
  List.iter (fun w -> if w.w_alive then ignore (send_to e w Proto.Shutdown)) e.live;
  let deadline = now () +. 5.0 in
  let rec wait_all ws =
    match ws with
    | [] -> ()
    | w :: rest -> (
        match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
        | 0, _ ->
            if now () > deadline then begin
              (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
              reap w.w_pid;
              wait_all rest
            end
            else begin
              ignore (Unix.select [] [] [] 0.02);
              wait_all ws
            end
        | _ -> wait_all rest
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> wait_all rest
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_all ws)
  in
  wait_all e.live;
  List.iter
    (fun w -> try Unix.close w.w_fd with Unix.Unix_error _ -> ())
    e.live;
  e.live <- []

let default_shard_size ~units ~workers =
  if units = 0 then 1
  else min 256 (max 1 ((units + (workers * 8) - 1) / (workers * 8)))

let execute cfg ~job ~units ~check =
  if cfg.workers < 1 then Error "need at least one worker"
  else if cfg.stop_after_shards <> None && cfg.journal_dir = None then
    Error "suspension requires a journal (set a journal directory)"
  else begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let setup =
      match cfg.resume with
      | Some id -> (
          let dir = Option.value cfg.journal_dir ~default:Journal.default_dir in
          match Journal.load ~dir id with
          | Error m -> Error m
          | Ok l ->
              if Proto.job_fingerprint l.l_job <> Proto.job_fingerprint job then
                Error
                  (Printf.sprintf
                     "job %s was journalled for a different job description" id)
              else if l.l_cells <> units then
                Error
                  (Printf.sprintf "job %s journalled %d cells, the plan has %d"
                     id l.l_cells units)
              else if l.l_hostile <> [] then
                Error
                  (Printf.sprintf
                     "job %s recorded shard %d as hostile; not resumable" id
                     (List.hd l.l_hostile))
              else
                Result.map
                  (fun j -> (l.l_shard_size, Some j, l.l_done))
                  (Journal.reopen ~dir id))
      | None -> (
          let shard_size =
            match cfg.shard_size with
            | Some s -> max 1 s
            | None -> default_shard_size ~units ~workers:cfg.workers
          in
          match
            Option.map
              (fun dir -> Journal.create ~dir ~job ~cells:units ~shard_size ())
              cfg.journal_dir
          with
          | journal -> Ok (shard_size, journal, [])
          | exception exn ->
              Error ("cannot create journal: " ^ Printexc.to_string exn))
    in
    match setup with
    | Error m -> Error m
    | Ok (shard_size, journal, done_shards) ->
        let nshards =
          if units = 0 then 0 else (units + shard_size - 1) / shard_size
        in
        let shards =
          Array.init nshards (fun i ->
              {
                sh_id = i;
                sh_lo = i * shard_size;
                sh_hi = min units ((i + 1) * shard_size);
                sh_state = Pending;
                sh_not_before = 0.;
                sh_attempts = 0;
              })
        in
        let e =
          {
            cfg;
            job;
            units;
            check;
            shards;
            payloads = Array.make nshards None;
            journal;
            live = [];
            next_wid = 0;
            cut = max_int;
            chaos_left =
              (match cfg.chaos_kill_shard with Some (_, n) -> n | None -> 0);
            hs_failures = 0;
            st_resumed = 0;
            st_executed = 0;
            st_spawned = 0;
            st_killed = 0;
            st_reassigned = 0;
          }
        in
        (* Restore journalled shards; a corrupt entry is just re-run. *)
        List.iter
          (fun (shard, payload) ->
            if shard >= 0 && shard < nshards && shards.(shard).sh_state <> Done
            then
              match
                check ~lo:shards.(shard).sh_lo ~hi:shards.(shard).sh_hi payload
              with
              | Ok finding ->
                  e.payloads.(shard) <- Some payload;
                  shards.(shard).sh_state <- Done;
                  e.st_resumed <- e.st_resumed + 1;
                  (match finding with
                  | Some abs when abs < e.cut -> e.cut <- abs
                  | _ -> ())
              | Error _ -> ())
          done_shards;
        let verdict =
          match loop e with
          | () -> `Complete
          | exception Suspend -> `Suspended
          | exception Fatal m -> `Fatal m
          | exception exn -> `Fatal (Printexc.to_string exn)
        in
        shutdown e;
        Option.iter Journal.close e.journal;
        let stats =
          {
            job_id = Option.map Journal.id journal;
            shards = nshards;
            shard_size;
            resumed = e.st_resumed;
            executed = e.st_executed;
            spawned = e.st_spawned;
            killed = e.st_killed;
            reassigned = e.st_reassigned;
          }
        in
        (match verdict with
        | `Complete -> Ok (`Complete, e.payloads, stats)
        | `Suspended -> (
            match stats.job_id with
            | Some id -> Ok (`Suspended id, e.payloads, stats)
            | None -> Error "suspended without a journal")
        | `Fatal m -> Error m)
  end

(* {2 Mode wrappers}

   Payload validation and the payload→outcome fold both live in shared
   modules ({!Proto.check_sweep_payload} / {!Merge}) so the TCP queue
   and client reuse the exact same code paths. *)

let sweep ?metrics ?on_progress cfg ~job ~plan () =
  let units = Svm.Explore.sweep_cells plan in
  match execute cfg ~job ~units ~check:Proto.check_sweep_payload with
  | Error m -> Error m
  | Ok (`Suspended id, _, stats) -> Ok (Suspended id, stats)
  | Ok (`Complete, payloads, stats) ->
      let outcome =
        Merge.sweep ?metrics ?on_progress plan ~shard_size:stats.shard_size
          ~payloads
      in
      Ok (Complete outcome, stats)

let explore ?metrics ?on_progress cfg ~job ~plan () =
  let units = Svm.Explore.plan_tasks plan in
  match execute cfg ~job ~units ~check:Proto.check_explore_payload with
  | Error m -> Error m
  | Ok (`Suspended id, _, stats) -> Ok (Suspended id, stats)
  | Ok (`Complete, payloads, stats) ->
      let result =
        Merge.explore ?metrics ?on_progress plan ~shard_size:stats.shard_size
          ~payloads
      in
      Ok (Complete result, stats)
