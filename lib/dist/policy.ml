(* Pure failure-handling decisions shared by the fork coordinator and
   the TCP job queue. Everything here is a function of plain numbers so
   the schedules are unit-testable without forking a single process. *)

(* {2 Shard retry} *)

let backoff_delay ~base ~attempt =
  if attempt <= 0 then 0. else base *. (2. ** float_of_int (attempt - 1))

type retry_action = Requeue of float | Hostile

let retry ~max_retries ~base ~attempts =
  if attempts > max_retries then Hostile
  else Requeue (backoff_delay ~base ~attempt:attempts)

(* {2 Heartbeats} *)

type heartbeat_action = Wait | Ping | Dead

let heartbeat ~timeout ~silent ~pinged =
  if silent > timeout then Dead
  else if (silent > timeout /. 2.) && not pinged then Ping
  else Wait

(* Earliest future instant the heartbeat state can change: the ping
   edge if it has not fired yet, else the death edge. *)
let heartbeat_deadline ~timeout ~silent ~pinged =
  if pinged then timeout -. silent
  else Float.min ((timeout /. 2.) -. silent) (timeout -. silent)

(* {2 Client reconnection} *)

(* Full-jitter exponential backoff: attempt [k] (0-based) sleeps a
   uniform fraction of [min cap (base * 2^k)]. [rand] is the caller's
   uniform [0,1) draw, injected so tests can pin it. *)
let reconnect_delay ~base ~cap ~attempt ~rand =
  let rand = Float.min 1. (Float.max 0. rand) in
  let ceiling = Float.min cap (base *. (2. ** float_of_int attempt)) in
  ceiling *. Float.max 0.1 rand

(* {2 Byte-rate caps} *)

(* One-second windows: a peer that shoves more than [limit_per_s] bytes
   inside any single window blows the cap. A window older than a second
   is closed and the arriving bytes open a fresh one — an over-limit
   total spread over many seconds is fine, a burst inside one is not. *)
let rate_check ~limit_per_s ~window_start ~window_bytes ~arrived ~now =
  if now -. window_start >= 1.0 then ((now, arrived), arrived > limit_per_s)
  else
    let window_bytes = window_bytes + arrived in
    ((window_start, window_bytes), window_bytes > limit_per_s)
