(** TCP plumbing for the network service: addresses, listening, dialing
    with a deadline, the connecting side of the {!Proto.hello}
    handshake, and the network chaos harness used to prove the service
    fault-tolerant. *)

(** {1 Addresses} *)

val parse_addr : string -> (Unix.sockaddr, string) result
(** Parse ["HOST:PORT"]. An empty host or ["*"] means any interface;
    otherwise a dotted quad or a resolvable name. Port [0] is allowed
    for listening (the kernel picks; {!listen} reports it). *)

val string_of_sockaddr : Unix.sockaddr -> string

(** {1 Listening and dialing} *)

val listen : ?backlog:int -> Unix.sockaddr -> Unix.file_descr * int
(** Bind + listen with [SO_REUSEADDR]; returns the socket and the
    {e actual} bound port (meaningful when asked for port 0). Raises
    [Unix.Unix_error] if the address is taken or not bindable. *)

val dial : ?timeout:float -> Unix.sockaddr -> (Unix.file_descr, string) result
(** Blocking connect bounded by [timeout] (default 10s) — a dead or
    black-holed address fails instead of hanging the caller. *)

(** {1 Chaos harness}

    Fault injection on a peer's {e write} path, for proving end-to-end
    results are unaffected by a misbehaving network. Every [every]-th
    write (deterministic counter, no clocks) the chosen fault fires:
    [Drop] cuts the connection; [Delay] stalls 50ms then writes;
    [Truncate] sends half the frame then cuts; [Garbage] sends bytes
    that are not a frame then cuts. Cuts raise {!Chaos_cut}, which the
    reconnecting worker treats exactly like a failed link. *)

type chaos_mode = Drop | Delay | Truncate | Garbage

val chaos_mode_name : chaos_mode -> string
val chaos_mode_of_string : string -> (chaos_mode, string) result

type chaos

val chaos : ?every:int -> chaos_mode -> chaos
(** A fresh injection counter; [every] defaults to 7. *)

exception Chaos_cut

val chaos_write : ?chaos:chaos -> Unix.file_descr -> Svm.Json.t -> unit
(** {!Frame.write} with optional fault injection. *)

(** {1 Handshake} *)

type handshake_error =
  | Hs_rejected of string  (** typed refusal: retrying is pointless *)
  | Hs_link of string  (** the link failed; retrying may succeed *)

val client_handshake :
  ?timeout:float ->
  Unix.file_descr ->
  role:Proto.role ->
  fingerprint:string ->
  (unit, handshake_error) result
(** Introduce ourselves and await the verdict, both bounded by
    [timeout] (default 10s). [Hs_rejected] carries the server's typed
    reason (version skew, fingerprint mismatch, draining). *)
