module Json = Svm.Json

(* Fold shard payloads back into a sweep outcome through the exact
   in-process merge. Cells whose shard never arrived (past the finding
   cut, or a payload the check rejected) recompute locally — both are
   deterministic, so the outcome is independent of which side ran what. *)
let sweep ?metrics ?on_progress plan ~shard_size ~payloads =
  let units = Svm.Explore.sweep_cells plan in
  let tags = Array.make units ' ' in
  Array.iteri
    (fun shard p ->
      match p with
      | Some (Json.String s) ->
          let lo = shard * shard_size in
          String.iteri (fun i c -> tags.(lo + i) <- c) s
      | _ -> ())
    payloads;
  let verdict_of i =
    match tags.(i) with
    | 'C' -> Svm.Explore.Clean
    | 'D' -> Svm.Explore.Deadlocked
    | _ ->
        (* 'V', or a cell past the cut whose shard was never dealt:
           recompute locally — deterministic either way, and for 'V'
           this recovers the violation record the wire elides. *)
        Svm.Explore.sweep_cell plan i
  in
  Svm.Explore.sweep_merge ?metrics ?on_progress plan ~verdict_of

let explore ?metrics ?on_progress plan ~shard_size ~payloads =
  let units = Svm.Explore.plan_tasks plan in
  let summaries = Array.make units None in
  Array.iteri
    (fun shard p ->
      match p with
      | Some (Json.List l) ->
          let lo = shard * shard_size in
          List.iteri
            (fun i v ->
              match Proto.summary_of_json v with
              | Ok s -> summaries.(lo + i) <- Some s
              | Error _ -> ())
            l
      | _ -> ())
    payloads;
  let outcome_of i =
    match summaries.(i) with
    | Some s -> (s, None)
    | None -> Svm.Explore.task_outcome plan i
  in
  Svm.Explore.merge_plan ?metrics ?on_progress plan ~outcome_of
