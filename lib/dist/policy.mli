(** Pure failure-handling decisions shared by the fork coordinator and
    the TCP job queue: retry/backoff schedules, heartbeat edges, client
    reconnection jitter and per-peer byte-rate caps. All functions of
    plain numbers — unit-testable without forking a process. *)

(** {1 Shard retry} *)

val backoff_delay : base:float -> attempt:int -> float
(** Delay before re-dealing a shard that has failed [attempt] times:
    [base * 2^(attempt-1)]; [0.] for [attempt <= 0]. *)

type retry_action =
  | Requeue of float  (** put the shard back, gated by this delay *)
  | Hostile  (** [attempts > max_retries]: abort, never retry forever *)

val retry : max_retries:int -> base:float -> attempts:int -> retry_action

(** {1 Heartbeats} *)

type heartbeat_action =
  | Wait
  | Ping  (** silent past half the timeout and not yet pinged *)
  | Dead  (** silent past the full timeout *)

val heartbeat :
  timeout:float -> silent:float -> pinged:bool -> heartbeat_action

val heartbeat_deadline :
  timeout:float -> silent:float -> pinged:bool -> float
(** Seconds until the next heartbeat edge for this peer (may be
    negative if already past). *)

(** {1 Client reconnection} *)

val reconnect_delay :
  base:float -> cap:float -> attempt:int -> rand:float -> float
(** Full-jitter exponential backoff: attempt [k] (0-based) sleeps
    [max 0.1 rand * min cap (base * 2^k)], [rand] uniform in [0,1)
    injected by the caller (tests pin it). *)

(** {1 Byte-rate caps} *)

val rate_check :
  limit_per_s:int ->
  window_start:float ->
  window_bytes:int ->
  arrived:int ->
  now:float ->
  (float * int) * bool
(** Fold [arrived] bytes into the peer's one-second window; returns the
    new [(window_start, window_bytes)] and whether the cap was exceeded
    (kill the peer). A window older than a second closes and the
    arriving bytes open a fresh one — only a burst inside a single
    window trips the cap. *)
