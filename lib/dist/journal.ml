module Json = Svm.Json

let default_dir = ".asmsim-jobs"

type t = { j_id : string; j_oc : out_channel; j_fsync : bool }

let id t = t.j_id

(* Fresh ids must only be unique enough to not collide on one machine:
   wall-clock second + pid + an in-process counter. *)
let counter = ref 0

let fresh_id () =
  incr counter;
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d-p%d-%d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec (Unix.getpid ()) !counter

let mkdir_p path =
  if not (Sys.file_exists path) then Unix.mkdir path 0o755

(* Durability of a *file* needs durability of its directory entry: an
   fsynced journal whose directory was never synced can vanish whole on
   power loss, stranding a resume. Some filesystems refuse fsync on a
   directory fd — a capability gap, not corruption — so errors are
   swallowed. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let journal_file ~dir id = Filename.concat (Filename.concat dir id) "journal.jsonl"

let write_line t v =
  output_string t.j_oc (Json.to_string v);
  output_char t.j_oc '\n';
  flush t.j_oc;
  if t.j_fsync then Unix.fsync (Unix.descr_of_out_channel t.j_oc)

let create ?(dir = default_dir) ?(fsync = false) ~job ~cells ~shard_size () =
  mkdir_p dir;
  let j_id = fresh_id () in
  mkdir_p (Filename.concat dir j_id);
  let j_oc = open_out_gen [ Open_creat; Open_wronly; Open_trunc ] 0o644
      (journal_file ~dir j_id)
  in
  let t = { j_id; j_oc; j_fsync = fsync } in
  write_line t
    (Json.Obj
       [
         ("v", Json.Int 1);
         ("job", Proto.job_to_json job);
         ("cells", Json.Int cells);
         ("shard_size", Json.Int shard_size);
       ]);
  if fsync then begin
    (* The header line is on disk; now make the file's existence (and
       the job directory's) just as durable as its contents. *)
    fsync_dir (Filename.concat dir j_id);
    fsync_dir dir
  end;
  t

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* A record exists only once its newline does: a torn final line (the
   append a crash interrupted) is not part of the journal. *)
let complete_prefix_len s =
  match String.rindex_opt s '\n' with None -> 0 | Some i -> i + 1

let reopen ?(dir = default_dir) ?(fsync = false) j_id =
  let file = journal_file ~dir j_id in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "no journal for job %s under %s" j_id dir)
  else begin
    (* Appending after a torn line would weld the next record onto it,
       corrupting both; cut back to the last record boundary first. *)
    let s = read_file file in
    let valid = complete_prefix_len s in
    if valid < String.length s then begin
      let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.ftruncate fd valid;
          if fsync then Unix.fsync fd)
    end;
    if fsync then fsync_dir (Filename.concat dir j_id);
    Ok
      {
        j_id;
        j_oc = open_out_gen [ Open_append; Open_wronly ] 0o644 file;
        j_fsync = fsync;
      }
  end

let append_shard t ~shard ~payload =
  write_line t
    (Json.Obj [ ("shard", Json.Int shard); ("payload", payload) ])

let append_hostile t ~shard =
  write_line t (Json.Obj [ ("hostile", Json.Int shard) ])

let close t = close_out t.j_oc

type loaded = {
  l_job : Proto.job;
  l_cells : int;
  l_shard_size : int;
  l_done : (int * Svm.Json.t) list;
  l_hostile : int list;
}

(* Same boundary rule as {!reopen}: a torn final line is invisible. *)
let complete_lines s =
  match String.rindex_opt s '\n' with
  | None -> []
  | Some i -> String.split_on_char '\n' (String.sub s 0 i)

let load ?(dir = default_dir) j_id =
  let file = journal_file ~dir j_id in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "no journal for job %s under %s" j_id dir)
  else
    match complete_lines (read_file file) with
    | [] -> Error (Printf.sprintf "journal of job %s is empty" j_id)
    | header :: rest -> (
        match Json.of_string header with
        | Error m ->
            Error (Printf.sprintf "journal of job %s: corrupt header: %s" j_id m)
        | Ok h -> (
            let int_field name =
              Option.bind (Json.member name h) Json.to_int
            in
            match
              (Json.member "job" h, int_field "cells", int_field "shard_size")
            with
            | Some jv, Some l_cells, Some l_shard_size -> (
                match Proto.job_of_json jv with
                | Error m ->
                    Error
                      (Printf.sprintf "journal of job %s: bad job record: %s"
                         j_id m)
                | Ok l_job ->
                    (* Body lines append-only; stop at the first corrupt
                       line — it can only be the interrupted last write. *)
                    let done_rev = ref [] in
                    let hostile_rev = ref [] in
                    (try
                       List.iter
                         (fun line ->
                           match Json.of_string line with
                           | Error _ -> raise Exit
                           | Ok v -> (
                               match
                                 ( Json.member "shard" v,
                                   Json.member "payload" v,
                                   Json.member "hostile" v )
                               with
                               | Some s, Some payload, _ -> (
                                   match Json.to_int s with
                                   | Some shard ->
                                       done_rev := (shard, payload) :: !done_rev
                                   | None -> raise Exit)
                               | _, _, Some hs -> (
                                   match Json.to_int hs with
                                   | Some shard ->
                                       hostile_rev := shard :: !hostile_rev
                                   | None -> raise Exit)
                               | _ -> raise Exit))
                         rest
                     with Exit -> ());
                    Ok
                      {
                        l_job;
                        l_cells;
                        l_shard_size;
                        l_done = List.rev !done_rev;
                        l_hostile = List.rev !hostile_rev;
                      })
            | _ ->
                Error
                  (Printf.sprintf "journal of job %s: malformed header" j_id)))

let list_ids ?(dir = default_dir) () =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun id ->
           Sys.file_exists (journal_file ~dir id))
    |> List.sort String.compare
