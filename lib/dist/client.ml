module Json = Svm.Json
module Metrics = Svm.Metrics
module Log = Svm.Log

type config = {
  fingerprint : string;
  chaos : Net.chaos option;
  max_failures : int;
  backoff_base : float;
  backoff_cap : float;
  dial_timeout : float;
  read_timeout : float;
  log : Log.t;
  metrics : Metrics.t option;
  spans : Span.t option;
}

let default_config ~fingerprint () =
  {
    fingerprint;
    chaos = None;
    max_failures = 8;
    backoff_base = 0.2;
    backoff_cap = 5.0;
    dial_timeout = 10.;
    read_timeout = 60.;
    log = Log.null;
    metrics = None;
    spans = None;
  }

let logf cfg fmt = Log.infof cfg.log fmt
let warnf cfg fmt = Log.warnf cfg.log fmt
let debugf cfg fmt = Log.debugf cfg.log fmt

(* A connection-level failure: close, back off, reconnect. *)
exception Link of string

(* Clean end of service with this process exit code. *)
exception Quit of int

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let frame_error e = Link (Format.asprintf "%a" Frame.pp_error e)

(* Back off before reconnect attempt [failures] (1-based), full-jitter. *)
let backoff cfg rng failures =
  if failures > 0 then
    Unix.sleepf
      (Policy.reconnect_delay ~base:cfg.backoff_base ~cap:cfg.backoff_cap
         ~attempt:(failures - 1)
         ~rand:(Random.State.float rng 1.0))

(* Dial + handshake, driving the shared bounded-reconnect state.
   [session fd] runs until it raises [Link] (reconnect) or [Quit]. *)
let connect_loop cfg ~role addr session =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rng = Random.State.make_self_init () in
  let failures = ref 0 in
  let rec go () =
    if !failures > cfg.max_failures then begin
      Log.errorf cfg.log "giving up after %d consecutive connection failures"
        !failures;
      Error
        (Printf.sprintf "no usable connection after %d attempts" !failures)
    end
    else begin
      backoff cfg rng !failures;
      match Net.dial ~timeout:cfg.dial_timeout addr with
      | Error m ->
          incr failures;
          warnf cfg "connect failed (%s); attempt %d" m !failures;
          go ()
      | Ok fd -> (
          match
            Net.client_handshake fd ~role ~fingerprint:cfg.fingerprint
          with
          | Error (Net.Hs_rejected m) ->
              close_quiet fd;
              Error (Printf.sprintf "server rejected us: %s" m)
          | Error (Net.Hs_link m) ->
              close_quiet fd;
              incr failures;
              warnf cfg "handshake failed (%s); attempt %d" m !failures;
              go ()
          | Ok () -> (
              failures := 0;
              match session fd with
              | () ->
                  close_quiet fd;
                  incr failures;
                  go ()
              | exception Link m ->
                  close_quiet fd;
                  incr failures;
                  Metrics.bump cfg.metrics "net_link_losses_total";
                  warnf cfg "link lost (%s); reconnecting" m;
                  go ()
              | exception Quit code ->
                  close_quiet fd;
                  Ok code
              | exception exn ->
                  close_quiet fd;
                  raise exn))
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Remote worker                                                        *)
(* ------------------------------------------------------------------ *)

let worker_send cfg fd msg =
  try Net.chaos_write ?chaos:cfg.chaos fd (Proto.net_from_worker_to_json msg)
  with
  | Net.Chaos_cut ->
      Metrics.bump cfg.metrics "worker_chaos_cuts_total";
      raise (Link "chaos cut the connection")
  | Unix.Unix_error (e, _, _) -> raise (Link (Unix.error_message e))

(* The heartbeat answer doubles as the metrics push: every pong carries
   this worker's full registry snapshot (cumulative, so the server just
   keeps the latest). Piggybacking on the cadence the server already
   enforces means telemetry costs zero extra frames and stops exactly
   when the worker does — staleness is the failure signal. *)
let worker_pong cfg fd =
  worker_send cfg fd
    (Proto.Nf_pong { metrics = Option.map Metrics.snapshot cfg.metrics })

let worker_recv cfg fd =
  match Frame.read ~timeout:cfg.read_timeout fd with
  | Ok v -> (
      match Proto.net_to_worker_of_json v with
      | Ok m -> m
      | Error m -> raise (Link ("undecodable server frame: " ^ m)))
  | Error e -> raise (frame_error e)

let worker_session cfg ~lookup fd =
  let jobs : (string, Worker.instance * string) Hashtbl.t = Hashtbl.create 4 in
  let open_job jid job =
    match Hashtbl.find_opt jobs jid with
    | Some (inst, _) ->
        worker_send cfg fd
          (Proto.Nf_job_ok { jid; cells = Worker.cells_of_instance inst })
    | None -> (
        match lookup job with
        | Ok inst ->
            Hashtbl.replace jobs jid
              (inst, Span.job_tag (Proto.job_fingerprint job));
            Metrics.bump cfg.metrics "worker_jobs_opened_total";
            logf cfg "opened job %s (%d cells)" jid
              (Worker.cells_of_instance inst);
            worker_send cfg fd
              (Proto.Nf_job_ok { jid; cells = Worker.cells_of_instance inst })
        | Error msg ->
            warnf cfg "cannot open job %s: %s" jid msg;
            worker_send cfg fd (Proto.Nf_job_err { jid; msg }))
  in
  (* Between cells of a long shard, answer pings (and honour shutdown)
     so the server's heartbeats survive slow compute. *)
  let poll_control () =
    match Unix.select [ fd ] [] [] 0.0 with
    | [], _, _ -> ()
    | _ -> (
        match worker_recv cfg fd with
        | Proto.Nw_ping -> worker_pong cfg fd
        | Proto.Nw_shutdown -> raise (Quit 0)
        | Proto.Nw_job { jid; job } -> open_job jid job
        | Proto.Nw_assign _ -> raise (Link "assigned a shard while busy"))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec loop () =
    (match worker_recv cfg fd with
    | Proto.Nw_ping -> worker_pong cfg fd
    | Proto.Nw_shutdown -> raise (Quit 0)
    | Proto.Nw_job { jid; job } -> open_job jid job
    | Proto.Nw_assign { jid; shard; lo; hi } -> (
        let recv_start = Span.now_us () in
        match Hashtbl.find_opt jobs jid with
        | None -> raise (Link "assigned a job we never opened")
        | Some (inst, tag) ->
            debugf cfg "job %s shard %d [%d,%d) assigned" jid shard lo hi;
            Span.emit cfg.spans ~phase:"receive" ~job:tag ~shard
              ~start_us:recv_start;
            let tick completed =
              worker_send cfg fd (Proto.Nf_progress { jid; shard; completed });
              poll_control ()
            in
            let exec_start = Span.now_us () in
            let payload = Worker.compute_shard inst ~lo ~hi ~tick in
            Span.emit cfg.spans ~phase:"execute" ~job:tag ~shard
              ~start_us:exec_start;
            let reply_start = Span.now_us () in
            worker_send cfg fd (Proto.Nf_result { jid; shard; payload });
            Span.emit cfg.spans ~phase:"reply" ~job:tag ~shard
              ~start_us:reply_start;
            Metrics.bump cfg.metrics "worker_shards_total";
            Metrics.bump cfg.metrics ~by:(hi - lo) "worker_cells_total"));
    loop ()
  in
  loop ()

let worker_loop cfg ~lookup addr =
  match
    connect_loop cfg ~role:Proto.Worker_role addr (fun fd ->
        worker_session cfg ~lookup fd)
  with
  | Ok code -> code
  | Error m ->
      logf cfg "%s" m;
      1

(* ------------------------------------------------------------------ *)
(* Submitting client                                                    *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Sweep_outcome of Svm.Explore.sweep_outcome
  | Explore_outcome of Svm.Univ.t Svm.Explore.result

type submission = Finished of outcome | Suspended of string

type stats = {
  job_id : string;
  shards : int;
  shard_size : int;
  resumed : int;
  executed : int;
  reconnects : int;
}

(* Terminal job verdicts cross the reconnect loop as exceptions. *)
exception Done of int * int  (* executed, resumed *)
exception Refused of string
exception Draining

let client_send fd msg =
  try Frame.write fd (Proto.client_to_server_to_json msg)
  with Unix.Unix_error (e, _, _) -> raise (Link (Unix.error_message e))

let client_recv cfg fd =
  match Frame.read ~timeout:cfg.read_timeout fd with
  | Ok v -> (
      match Proto.server_to_client_of_json v with
      | Ok m -> m
      | Error m -> raise (Link ("undecodable server frame: " ^ m)))
  | Error e -> raise (frame_error e)

let submit ?metrics ?resume cfg ~instance ~job addr =
  let units = Worker.cells_of_instance instance in
  let check =
    match instance with
    | Worker.Sweep_instance _ -> Proto.check_sweep_payload
    | Worker.Explore_instance _ -> Proto.check_explore_payload
  in
  (* Survives reconnects: once accepted, later sessions resume by id
     and re-receive the journalled backlog (idempotent stores). *)
  let jid = ref resume in
  let shard_size = ref 0 in
  let payloads = ref [||] in
  let reconnects = ref (-1) in
  let tag = Span.job_tag (Proto.job_fingerprint job) in
  let session fd =
    incr reconnects;
    let submit_start = Span.now_us () in
    client_send fd (Proto.Cs_submit { job; resume = !jid });
    Span.emit cfg.spans ~phase:"submit" ~job:tag ~shard:(-1)
      ~start_us:submit_start;
    let rec loop () =
      (match client_recv cfg fd with
      | Proto.Sc_ping -> client_send fd Proto.Cs_pong
      | Proto.Sc_stats _ -> ()
      | Proto.Sc_rejected m -> raise (Refused m)
      | Proto.Sc_failed m -> raise (Refused m)
      | Proto.Sc_draining -> raise Draining
      | Proto.Sc_done { executed; resumed } -> raise (Done (executed, resumed))
      | Proto.Sc_accepted { jid = j; cells; shard_size = ss } ->
          if cells <> units then
            raise
              (Refused
                 (Printf.sprintf
                    "server planned %d cells but the local plan has %d — \
                     registries disagree"
                    cells units));
          (match !jid with
          | Some prev when prev <> j ->
              raise (Refused (Printf.sprintf "server renamed job %s to %s" prev j))
          | _ -> ());
          jid := Some j;
          if !payloads = [||] then begin
            shard_size := ss;
            let nshards = if units = 0 then 0 else (units + ss - 1) / ss in
            payloads := Array.make nshards None
          end
          else if ss <> !shard_size then
            raise
              (Refused
                 (Printf.sprintf "job %s shard size changed from %d to %d" j
                    !shard_size ss))
      | Proto.Sc_shard { shard; payload } ->
          if shard >= 0 && shard < Array.length !payloads then begin
            let collect_start = Span.now_us () in
            let lo = shard * !shard_size in
            let hi = min units ((shard + 1) * !shard_size) in
            match check ~lo ~hi payload with
            | Ok _ ->
                !payloads.(shard) <- Some payload;
                Span.emit cfg.spans ~phase:"collect" ~job:tag ~shard
                  ~start_us:collect_start
            | Error m -> raise (Link ("bad shard payload from server: " ^ m))
          end);
      loop ()
    in
    loop ()
  in
  let finish verdict =
    let executed, resumed =
      match verdict with `Done (e, r) -> (e, r) | `Drain -> (0, 0)
    in
    let stats jid =
      {
        job_id = jid;
        shards = Array.length !payloads;
        shard_size = !shard_size;
        resumed;
        executed;
        reconnects = max 0 !reconnects;
      }
    in
    match (verdict, !jid) with
    | `Drain, Some id -> Ok (Suspended id, stats id)
    | `Drain, None -> Error "server is draining"
    | `Done _, None -> Error "finished without a job id"
    | `Done _, Some id ->
        let outcome =
          match instance with
          | Worker.Sweep_instance p ->
              Sweep_outcome
                (Merge.sweep ?metrics p ~shard_size:!shard_size
                   ~payloads:!payloads)
          | Worker.Explore_instance p ->
              Explore_outcome
                (Merge.explore ?metrics p ~shard_size:!shard_size
                   ~payloads:!payloads)
        in
        Ok (Finished outcome, stats id)
  in
  match connect_loop cfg ~role:Proto.Client_role addr session with
  | Ok _ -> Error "server shut the session down before the job finished"
  | Error m -> Error m
  | exception Done (e, r) -> finish (`Done (e, r))
  | exception Draining -> finish `Drain
  | exception Refused m -> Error m

(* ------------------------------------------------------------------ *)
(* One-shot stats query (the [asmsim top] backend)                      *)
(* ------------------------------------------------------------------ *)

(* Single dial, no reconnect loop: a status probe that cannot reach the
   server should say so immediately, not back off for seconds — [top]
   refreshes soon anyway and scripts want a crisp failure. *)
let stats_query cfg addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match Net.dial ~timeout:cfg.dial_timeout addr with
  | Error m -> Error (Printf.sprintf "cannot reach server: %s" m)
  | Ok fd -> (
      let query () =
        match
          Net.client_handshake fd ~role:Proto.Client_role
            ~fingerprint:cfg.fingerprint
        with
        | Error (Net.Hs_rejected m) ->
            Error (Printf.sprintf "server rejected us: %s" m)
        | Error (Net.Hs_link m) ->
            Error (Printf.sprintf "handshake failed: %s" m)
        | Ok () ->
            client_send fd Proto.Cs_stats;
            (* Answer heartbeats while waiting: the reply races the
               server's ping cadence on a busy queue. *)
            let rec wait () =
              match client_recv cfg fd with
              | Proto.Sc_ping ->
                  client_send fd Proto.Cs_pong;
                  wait ()
              | Proto.Sc_stats doc -> Ok doc
              | Proto.Sc_draining -> Error "server is draining"
              | Proto.Sc_rejected m | Proto.Sc_failed m -> Error m
              | Proto.Sc_accepted _ | Proto.Sc_shard _ | Proto.Sc_done _ ->
                  wait ()
            in
            wait ()
      in
      match Fun.protect ~finally:(fun () -> close_quiet fd) query with
      | r -> r
      | exception Link m -> Error (Printf.sprintf "link lost: %s" m))
