module Json = Svm.Json

type config = {
  fingerprint : string;
  chaos : Net.chaos option;
  max_failures : int;
  backoff_base : float;
  backoff_cap : float;
  dial_timeout : float;
  read_timeout : float;
  log : (string -> unit) option;
}

let default_config ~fingerprint () =
  {
    fingerprint;
    chaos = None;
    max_failures = 8;
    backoff_base = 0.2;
    backoff_cap = 5.0;
    dial_timeout = 10.;
    read_timeout = 60.;
    log = None;
  }

let logf cfg fmt =
  Printf.ksprintf (fun s -> match cfg.log with Some f -> f s | None -> ()) fmt

(* A connection-level failure: close, back off, reconnect. *)
exception Link of string

(* Clean end of service with this process exit code. *)
exception Quit of int

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let frame_error e = Link (Format.asprintf "%a" Frame.pp_error e)

(* Back off before reconnect attempt [failures] (1-based), full-jitter. *)
let backoff cfg rng failures =
  if failures > 0 then
    Unix.sleepf
      (Policy.reconnect_delay ~base:cfg.backoff_base ~cap:cfg.backoff_cap
         ~attempt:(failures - 1)
         ~rand:(Random.State.float rng 1.0))

(* Dial + handshake, driving the shared bounded-reconnect state.
   [session fd] runs until it raises [Link] (reconnect) or [Quit]. *)
let connect_loop cfg ~role addr session =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rng = Random.State.make_self_init () in
  let failures = ref 0 in
  let rec go () =
    if !failures > cfg.max_failures then begin
      logf cfg "giving up after %d consecutive connection failures" !failures;
      Error
        (Printf.sprintf "no usable connection after %d attempts" !failures)
    end
    else begin
      backoff cfg rng !failures;
      match Net.dial ~timeout:cfg.dial_timeout addr with
      | Error m ->
          incr failures;
          logf cfg "connect failed (%s); attempt %d" m !failures;
          go ()
      | Ok fd -> (
          match
            Net.client_handshake fd ~role ~fingerprint:cfg.fingerprint
          with
          | Error (Net.Hs_rejected m) ->
              close_quiet fd;
              Error (Printf.sprintf "server rejected us: %s" m)
          | Error (Net.Hs_link m) ->
              close_quiet fd;
              incr failures;
              logf cfg "handshake failed (%s); attempt %d" m !failures;
              go ()
          | Ok () -> (
              failures := 0;
              match session fd with
              | () ->
                  close_quiet fd;
                  incr failures;
                  go ()
              | exception Link m ->
                  close_quiet fd;
                  incr failures;
                  logf cfg "link lost (%s); reconnecting" m;
                  go ()
              | exception Quit code ->
                  close_quiet fd;
                  Ok code
              | exception exn ->
                  close_quiet fd;
                  raise exn))
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Remote worker                                                        *)
(* ------------------------------------------------------------------ *)

let worker_send cfg fd msg =
  try Net.chaos_write ?chaos:cfg.chaos fd (Proto.net_from_worker_to_json msg)
  with
  | Net.Chaos_cut -> raise (Link "chaos cut the connection")
  | Unix.Unix_error (e, _, _) -> raise (Link (Unix.error_message e))

let worker_recv cfg fd =
  match Frame.read ~timeout:cfg.read_timeout fd with
  | Ok v -> (
      match Proto.net_to_worker_of_json v with
      | Ok m -> m
      | Error m -> raise (Link ("undecodable server frame: " ^ m)))
  | Error e -> raise (frame_error e)

let worker_session cfg ~lookup fd =
  let jobs : (string, Worker.instance) Hashtbl.t = Hashtbl.create 4 in
  let open_job jid job =
    match Hashtbl.find_opt jobs jid with
    | Some inst ->
        worker_send cfg fd
          (Proto.Nf_job_ok { jid; cells = Worker.cells_of_instance inst })
    | None -> (
        match lookup job with
        | Ok inst ->
            Hashtbl.replace jobs jid inst;
            logf cfg "opened job %s (%d cells)" jid
              (Worker.cells_of_instance inst);
            worker_send cfg fd
              (Proto.Nf_job_ok { jid; cells = Worker.cells_of_instance inst })
        | Error msg ->
            logf cfg "cannot open job %s: %s" jid msg;
            worker_send cfg fd (Proto.Nf_job_err { jid; msg }))
  in
  (* Between cells of a long shard, answer pings (and honour shutdown)
     so the server's heartbeats survive slow compute. *)
  let poll_control () =
    match Unix.select [ fd ] [] [] 0.0 with
    | [], _, _ -> ()
    | _ -> (
        match worker_recv cfg fd with
        | Proto.Nw_ping -> worker_send cfg fd Proto.Nf_pong
        | Proto.Nw_shutdown -> raise (Quit 0)
        | Proto.Nw_job { jid; job } -> open_job jid job
        | Proto.Nw_assign _ -> raise (Link "assigned a shard while busy"))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec loop () =
    (match worker_recv cfg fd with
    | Proto.Nw_ping -> worker_send cfg fd Proto.Nf_pong
    | Proto.Nw_shutdown -> raise (Quit 0)
    | Proto.Nw_job { jid; job } -> open_job jid job
    | Proto.Nw_assign { jid; shard; lo; hi } -> (
        match Hashtbl.find_opt jobs jid with
        | None -> raise (Link "assigned a job we never opened")
        | Some inst ->
            let tick completed =
              worker_send cfg fd (Proto.Nf_progress { jid; shard; completed });
              poll_control ()
            in
            let payload = Worker.compute_shard inst ~lo ~hi ~tick in
            worker_send cfg fd (Proto.Nf_result { jid; shard; payload })));
    loop ()
  in
  loop ()

let worker_loop cfg ~lookup addr =
  match
    connect_loop cfg ~role:Proto.Worker_role addr (fun fd ->
        worker_session cfg ~lookup fd)
  with
  | Ok code -> code
  | Error m ->
      logf cfg "%s" m;
      1

(* ------------------------------------------------------------------ *)
(* Submitting client                                                    *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Sweep_outcome of Svm.Explore.sweep_outcome
  | Explore_outcome of Svm.Univ.t Svm.Explore.result

type submission = Finished of outcome | Suspended of string

type stats = {
  job_id : string;
  shards : int;
  shard_size : int;
  resumed : int;
  executed : int;
  reconnects : int;
}

(* Terminal job verdicts cross the reconnect loop as exceptions. *)
exception Done of int * int  (* executed, resumed *)
exception Refused of string
exception Draining

let client_send fd msg =
  try Frame.write fd (Proto.client_to_server_to_json msg)
  with Unix.Unix_error (e, _, _) -> raise (Link (Unix.error_message e))

let client_recv cfg fd =
  match Frame.read ~timeout:cfg.read_timeout fd with
  | Ok v -> (
      match Proto.server_to_client_of_json v with
      | Ok m -> m
      | Error m -> raise (Link ("undecodable server frame: " ^ m)))
  | Error e -> raise (frame_error e)

let submit ?metrics ?resume cfg ~instance ~job addr =
  let units = Worker.cells_of_instance instance in
  let check =
    match instance with
    | Worker.Sweep_instance _ -> Proto.check_sweep_payload
    | Worker.Explore_instance _ -> Proto.check_explore_payload
  in
  (* Survives reconnects: once accepted, later sessions resume by id
     and re-receive the journalled backlog (idempotent stores). *)
  let jid = ref resume in
  let shard_size = ref 0 in
  let payloads = ref [||] in
  let reconnects = ref (-1) in
  let session fd =
    incr reconnects;
    client_send fd (Proto.Cs_submit { job; resume = !jid });
    let rec loop () =
      (match client_recv cfg fd with
      | Proto.Sc_ping -> client_send fd Proto.Cs_pong
      | Proto.Sc_rejected m -> raise (Refused m)
      | Proto.Sc_failed m -> raise (Refused m)
      | Proto.Sc_draining -> raise Draining
      | Proto.Sc_done { executed; resumed } -> raise (Done (executed, resumed))
      | Proto.Sc_accepted { jid = j; cells; shard_size = ss } ->
          if cells <> units then
            raise
              (Refused
                 (Printf.sprintf
                    "server planned %d cells but the local plan has %d — \
                     registries disagree"
                    cells units));
          (match !jid with
          | Some prev when prev <> j ->
              raise (Refused (Printf.sprintf "server renamed job %s to %s" prev j))
          | _ -> ());
          jid := Some j;
          if !payloads = [||] then begin
            shard_size := ss;
            let nshards = if units = 0 then 0 else (units + ss - 1) / ss in
            payloads := Array.make nshards None
          end
          else if ss <> !shard_size then
            raise
              (Refused
                 (Printf.sprintf "job %s shard size changed from %d to %d" j
                    !shard_size ss))
      | Proto.Sc_shard { shard; payload } ->
          if shard >= 0 && shard < Array.length !payloads then begin
            let lo = shard * !shard_size in
            let hi = min units ((shard + 1) * !shard_size) in
            match check ~lo ~hi payload with
            | Ok _ -> !payloads.(shard) <- Some payload
            | Error m -> raise (Link ("bad shard payload from server: " ^ m))
          end);
      loop ()
    in
    loop ()
  in
  let finish verdict =
    let executed, resumed =
      match verdict with `Done (e, r) -> (e, r) | `Drain -> (0, 0)
    in
    let stats jid =
      {
        job_id = jid;
        shards = Array.length !payloads;
        shard_size = !shard_size;
        resumed;
        executed;
        reconnects = max 0 !reconnects;
      }
    in
    match (verdict, !jid) with
    | `Drain, Some id -> Ok (Suspended id, stats id)
    | `Drain, None -> Error "server is draining"
    | `Done _, None -> Error "finished without a job id"
    | `Done _, Some id ->
        let outcome =
          match instance with
          | Worker.Sweep_instance p ->
              Sweep_outcome
                (Merge.sweep ?metrics p ~shard_size:!shard_size
                   ~payloads:!payloads)
          | Worker.Explore_instance p ->
              Explore_outcome
                (Merge.explore ?metrics p ~shard_size:!shard_size
                   ~payloads:!payloads)
        in
        Ok (Finished outcome, stats id)
  in
  match connect_loop cfg ~role:Proto.Client_role addr session with
  | Ok _ -> Error "server shut the session down before the job finished"
  | Error m -> Error m
  | exception Done (e, r) -> finish (`Done (e, r))
  | exception Draining -> finish `Drain
  | exception Refused m -> Error m
