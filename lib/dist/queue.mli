(** The [asmsim serve] engine: a single-threaded TCP job queue that
    accepts many concurrent sweep/explore submissions, deals their
    shards to remote workers, journals every completed shard, and
    streams the payloads back to the submitting clients — which merge
    locally, so results stay byte-identical to in-process runs.

    Robustness posture, all on one [Unix.select] loop:
    - handshake deadline and a typed reject for version or registry
      fingerprint skew — a wrong peer is told why and cut, never hung;
    - per-peer frame stall deadlines ({!Frame.decoder}'s
      [stall_timeout]) and byte-rate caps ({!Policy.rate_check}) on top
      of the frame size cap — slow-loris and flooding peers are cut;
    - heartbeats with the {!Policy.heartbeat} half-timeout ping, shard
      deadlines, and {!Policy.retry} backoff/hostile handling exactly
      like the fork coordinator;
    - every accepted shard is journalled before it is streamed, so
      SIGTERM drains gracefully: stop accepting, let in-flight shards
      finish and checkpoint, tell clients [Sc_draining] (their job id
      resumes the work later), then exit cleanly;
    - completed journals double as a result cache: a fresh submit whose
      fingerprint matches a fully-completed journal of the same job is
      answered from that journal — payloads re-validated, zero shards
      re-executed ([net_cache_hits_total] counts the hits). *)

type config = {
  fingerprint : string;  (** scenario-registry fingerprint to enforce *)
  shard_size : int option;  (** fixed shard size; default scales to workers *)
  shard_timeout : float;
  heartbeat_timeout : float;
  handshake_timeout : float;
  frame_stall_timeout : float;  (** deadline for completing one frame *)
  rate_limit : int;  (** per-peer inbound bytes per second *)
  max_retries : int;  (** shard attempts before it is declared hostile *)
  backoff : float;  (** base of the exponential re-deal delay *)
  journal_dir : string;
  fsync : bool;  (** fsync journals on every checkpoint *)
  log : Svm.Log.t;
      (** leveled diagnostics: peer losses and retries at [Warn], job
          lifecycle at [Info], per-shard dealing at [Debug] *)
  metrics : Svm.Metrics.t option;
      (** connection / retry / queue-depth counters land here; also the
          base registry folded into {!Proto.Sc_stats} replies, together
          with every worker-pushed registry (live and departed) *)
  spans : Span.t option;
      (** when set, the queue stamps [admit]/[dispatch]/[merge] spans
          per job/shard for cross-process trace correlation *)
}

val default_config : fingerprint:string -> unit -> config

val serve :
  ?on_listen:(int -> unit) ->
  config ->
  lookup:(Proto.job -> (Worker.instance, string) result) ->
  Unix.sockaddr ->
  (unit, string) result
(** Run the service until SIGTERM completes a graceful drain ([Ok ()]).
    [on_listen] receives the actual bound port (bind to port 0 in
    tests). [lookup] expands submitted jobs — the server plans each job
    itself to know its cell count and validate worker payloads, and
    rejects submissions it cannot expand. [Error] is reserved for a
    broken listen address or an internal failure. *)
