module Json = Svm.Json

type sweep_params = {
  sw_tiers : string list;
  sw_max_faults : int;
  sw_op_window : int;
  sw_max_runs : int;
  sw_budget : int option;
}

type explore_params = {
  ex_max_steps : int;
  ex_max_crashes : int;
  ex_max_runs : int;
  ex_dedup : bool;
}

type mode = Sweep of sweep_params | Explore of explore_params

type job = { scenario : string; nprocs : int option; mode : mode }

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let job_to_json j =
  let mode_fields =
    match j.mode with
    | Sweep p ->
        [
          ("mode", Json.String "sweep");
          ("tiers", Json.List (List.map (fun s -> Json.String s) p.sw_tiers));
          ("max_faults", Json.Int p.sw_max_faults);
          ("op_window", Json.Int p.sw_op_window);
          ("max_runs", Json.Int p.sw_max_runs);
          ("budget", opt_int p.sw_budget);
        ]
    | Explore p ->
        [
          ("mode", Json.String "explore");
          ("max_steps", Json.Int p.ex_max_steps);
          ("max_crashes", Json.Int p.ex_max_crashes);
          ("max_runs", Json.Int p.ex_max_runs);
          ("dedup", Json.Bool p.ex_dedup);
        ]
  in
  Json.Obj
    (("scenario", Json.String j.scenario)
    :: ("nprocs", opt_int j.nprocs)
    :: mode_fields)

let job_fingerprint j = Json.to_string (job_to_json j)

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name conv v =
  match Json.member name v with
  | Some f -> (
      match conv f with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_int_field name v =
  match Json.member name v with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an int or null" name)

let to_bool = function Json.Bool b -> Some b | _ -> None

let job_of_json v =
  let* scenario = field "scenario" Json.to_str v in
  let* nprocs = opt_int_field "nprocs" v in
  let* mode_name = field "mode" Json.to_str v in
  match mode_name with
  | "sweep" ->
      let* tiers = field "tiers" Json.to_list v in
      let* sw_tiers =
        List.fold_right
          (fun t acc ->
            let* acc = acc in
            match Json.to_str t with
            | Some s -> Ok (s :: acc)
            | None -> Error "tiers must be strings")
          tiers (Ok [])
      in
      let* sw_max_faults = field "max_faults" Json.to_int v in
      let* sw_op_window = field "op_window" Json.to_int v in
      let* sw_max_runs = field "max_runs" Json.to_int v in
      let* sw_budget = opt_int_field "budget" v in
      Ok
        {
          scenario;
          nprocs;
          mode =
            Sweep { sw_tiers; sw_max_faults; sw_op_window; sw_max_runs; sw_budget };
        }
  | "explore" ->
      let* ex_max_steps = field "max_steps" Json.to_int v in
      let* ex_max_crashes = field "max_crashes" Json.to_int v in
      let* ex_max_runs = field "max_runs" Json.to_int v in
      let* ex_dedup = field "dedup" to_bool v in
      Ok
        {
          scenario;
          nprocs;
          mode = Explore { ex_max_steps; ex_max_crashes; ex_max_runs; ex_dedup };
        }
  | m -> Error (Printf.sprintf "unknown mode %S" m)

(* ------------------------------------------------------------------ *)
(* Messages                                                             *)
(* ------------------------------------------------------------------ *)

type to_worker =
  | Hello of job
  | Assign of { shard : int; lo : int; hi : int }
  | Ping
  | Shutdown

type from_worker =
  | Hello_ok of { cells : int }
  | Hello_err of string
  | Pong
  | Progress of { shard : int; completed : int }
  | Result of { shard : int; payload : Svm.Json.t }

let to_worker_to_json = function
  | Hello job -> Json.Obj [ ("t", Json.String "hello"); ("job", job_to_json job) ]
  | Assign { shard; lo; hi } ->
      Json.Obj
        [
          ("t", Json.String "assign");
          ("shard", Json.Int shard);
          ("lo", Json.Int lo);
          ("hi", Json.Int hi);
        ]
  | Ping -> Json.Obj [ ("t", Json.String "ping") ]
  | Shutdown -> Json.Obj [ ("t", Json.String "shutdown") ]

let to_worker_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "hello" -> (
      match Json.member "job" v with
      | Some j ->
          let* job = job_of_json j in
          Ok (Hello job)
      | None -> Error "hello without a job")
  | "assign" ->
      let* shard = field "shard" Json.to_int v in
      let* lo = field "lo" Json.to_int v in
      let* hi = field "hi" Json.to_int v in
      if shard < 0 || lo < 0 || hi < lo then Error "assign range is malformed"
      else Ok (Assign { shard; lo; hi })
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | t -> Error (Printf.sprintf "unknown coordinator message %S" t)

let from_worker_to_json = function
  | Hello_ok { cells } ->
      Json.Obj [ ("t", Json.String "hello-ok"); ("cells", Json.Int cells) ]
  | Hello_err msg ->
      Json.Obj [ ("t", Json.String "hello-err"); ("msg", Json.String msg) ]
  | Pong -> Json.Obj [ ("t", Json.String "pong") ]
  | Progress { shard; completed } ->
      Json.Obj
        [
          ("t", Json.String "progress");
          ("shard", Json.Int shard);
          ("completed", Json.Int completed);
        ]
  | Result { shard; payload } ->
      Json.Obj
        [ ("t", Json.String "result"); ("shard", Json.Int shard);
          ("payload", payload);
        ]

let from_worker_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "hello-ok" ->
      let* cells = field "cells" Json.to_int v in
      Ok (Hello_ok { cells })
  | "hello-err" ->
      let* msg = field "msg" Json.to_str v in
      Ok (Hello_err msg)
  | "pong" -> Ok Pong
  | "progress" ->
      let* shard = field "shard" Json.to_int v in
      let* completed = field "completed" Json.to_int v in
      Ok (Progress { shard; completed })
  | "result" -> (
      let* shard = field "shard" Json.to_int v in
      match Json.member "payload" v with
      | Some payload -> Ok (Result { shard; payload })
      | None -> Error "result without a payload")
  | t -> Error (Printf.sprintf "unknown worker message %S" t)

(* ------------------------------------------------------------------ *)
(* Shard payloads                                                       *)
(* ------------------------------------------------------------------ *)

let tag_of_verdict = function
  | Svm.Explore.Clean -> 'C'
  | Svm.Explore.Deadlocked -> 'D'
  | Svm.Explore.Violating _ -> 'V'

let verdict_tag_ok = function 'C' | 'D' | 'V' -> true | _ -> false

let bool_int b = Json.Int (if b then 1 else 0)

let summary_to_json (s : Svm.Explore.task_summary) =
  Json.List
    [
      bool_int s.Svm.Explore.ts_leaf;
      Json.Int s.Svm.Explore.ts_runs;
      Json.Int s.Svm.Explore.ts_truncated;
      bool_int s.Svm.Explore.ts_cex;
      Json.Int s.Svm.Explore.ts_pruned_states;
      Json.Int s.Svm.Explore.ts_pruned_commutes;
      bool_int s.Svm.Explore.ts_exhausted;
    ]

let summary_of_json v =
  match Json.to_list v with
  | Some
      [
        Json.Int leaf;
        Json.Int runs;
        Json.Int truncated;
        Json.Int cex;
        Json.Int pruned_states;
        Json.Int pruned_commutes;
        Json.Int exhausted;
      ]
    when runs >= 0 && truncated >= 0 && pruned_states >= 0
         && pruned_commutes >= 0 ->
      Ok
        {
          Svm.Explore.ts_leaf = leaf <> 0;
          ts_runs = runs;
          ts_truncated = truncated;
          ts_cex = cex <> 0;
          ts_pruned_states = pruned_states;
          ts_pruned_commutes = pruned_commutes;
          ts_exhausted = exhausted <> 0;
        }
  | _ -> Error "task summary must be a list of seven ints"
