module Json = Svm.Json

type sweep_params = {
  sw_tiers : string list;
  sw_max_faults : int;
  sw_op_window : int;
  sw_max_runs : int;
  sw_budget : int option;
}

type explore_params = {
  ex_max_steps : int;
  ex_max_crashes : int;
  ex_max_runs : int;
  ex_dedup : bool;
}

type mode = Sweep of sweep_params | Explore of explore_params

type job = {
  scenario : string;
  nprocs : int option;
  source : string option;
  mode : mode;
}

(* Upper bound on an embedded DSL scenario source. Kept equal to
   [Sdl.Compile.max_source_bytes] (this module cannot depend on [sdl];
   test_sdl pins the equality): the decoder enforces it, so a remote
   client cannot make a server parse an arbitrarily large program. *)
let max_source_bytes = 65536

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let opt_int = function None -> Json.Null | Some i -> Json.Int i

let job_to_json j =
  let mode_fields =
    match j.mode with
    | Sweep p ->
        [
          ("mode", Json.String "sweep");
          ("tiers", Json.List (List.map (fun s -> Json.String s) p.sw_tiers));
          ("max_faults", Json.Int p.sw_max_faults);
          ("op_window", Json.Int p.sw_op_window);
          ("max_runs", Json.Int p.sw_max_runs);
          ("budget", opt_int p.sw_budget);
        ]
    | Explore p ->
        [
          ("mode", Json.String "explore");
          ("max_steps", Json.Int p.ex_max_steps);
          ("max_crashes", Json.Int p.ex_max_crashes);
          ("max_runs", Json.Int p.ex_max_runs);
          ("dedup", Json.Bool p.ex_dedup);
        ]
  in
  (* [source] is emitted only when present, so the fingerprint (and any
     journal recorded against it) of a plain registry job is unchanged
     from protocol v2. *)
  let source_fields =
    match j.source with None -> [] | Some s -> [ ("source", Json.String s) ]
  in
  Json.Obj
    (("scenario", Json.String j.scenario)
    :: ("nprocs", opt_int j.nprocs)
    :: (source_fields @ mode_fields))

let job_fingerprint j = Json.to_string (job_to_json j)

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name conv v =
  match Json.member name v with
  | Some f -> (
      match conv f with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_int_field name v =
  match Json.member name v with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an int or null" name)

let to_bool = function Json.Bool b -> Some b | _ -> None

let opt_str_field name v =
  match Json.member name v with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string or null" name)

let job_of_json v =
  let* scenario = field "scenario" Json.to_str v in
  let* nprocs = opt_int_field "nprocs" v in
  let* source = opt_str_field "source" v in
  let* () =
    match source with
    | Some s when String.length s > max_source_bytes ->
        Error
          (Printf.sprintf "scenario source is %d bytes (cap %d)"
             (String.length s) max_source_bytes)
    | _ -> Ok ()
  in
  let* mode_name = field "mode" Json.to_str v in
  match mode_name with
  | "sweep" ->
      let* tiers = field "tiers" Json.to_list v in
      let* sw_tiers =
        List.fold_right
          (fun t acc ->
            let* acc = acc in
            match Json.to_str t with
            | Some s -> Ok (s :: acc)
            | None -> Error "tiers must be strings")
          tiers (Ok [])
      in
      let* sw_max_faults = field "max_faults" Json.to_int v in
      let* sw_op_window = field "op_window" Json.to_int v in
      let* sw_max_runs = field "max_runs" Json.to_int v in
      let* sw_budget = opt_int_field "budget" v in
      Ok
        {
          scenario;
          nprocs;
          source;
          mode =
            Sweep { sw_tiers; sw_max_faults; sw_op_window; sw_max_runs; sw_budget };
        }
  | "explore" ->
      let* ex_max_steps = field "max_steps" Json.to_int v in
      let* ex_max_crashes = field "max_crashes" Json.to_int v in
      let* ex_max_runs = field "max_runs" Json.to_int v in
      let* ex_dedup = field "dedup" to_bool v in
      Ok
        {
          scenario;
          nprocs;
          source;
          mode = Explore { ex_max_steps; ex_max_crashes; ex_max_runs; ex_dedup };
        }
  | m -> Error (Printf.sprintf "unknown mode %S" m)

(* ------------------------------------------------------------------ *)
(* Messages                                                             *)
(* ------------------------------------------------------------------ *)

type to_worker =
  | Hello of job
  | Assign of { shard : int; lo : int; hi : int }
  | Ping
  | Shutdown

type from_worker =
  | Hello_ok of { cells : int }
  | Hello_err of string
  | Pong
  | Progress of { shard : int; completed : int }
  | Result of { shard : int; payload : Svm.Json.t }

let to_worker_to_json = function
  | Hello job -> Json.Obj [ ("t", Json.String "hello"); ("job", job_to_json job) ]
  | Assign { shard; lo; hi } ->
      Json.Obj
        [
          ("t", Json.String "assign");
          ("shard", Json.Int shard);
          ("lo", Json.Int lo);
          ("hi", Json.Int hi);
        ]
  | Ping -> Json.Obj [ ("t", Json.String "ping") ]
  | Shutdown -> Json.Obj [ ("t", Json.String "shutdown") ]

let to_worker_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "hello" -> (
      match Json.member "job" v with
      | Some j ->
          let* job = job_of_json j in
          Ok (Hello job)
      | None -> Error "hello without a job")
  | "assign" ->
      let* shard = field "shard" Json.to_int v in
      let* lo = field "lo" Json.to_int v in
      let* hi = field "hi" Json.to_int v in
      if shard < 0 || lo < 0 || hi < lo then Error "assign range is malformed"
      else Ok (Assign { shard; lo; hi })
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | t -> Error (Printf.sprintf "unknown coordinator message %S" t)

let from_worker_to_json = function
  | Hello_ok { cells } ->
      Json.Obj [ ("t", Json.String "hello-ok"); ("cells", Json.Int cells) ]
  | Hello_err msg ->
      Json.Obj [ ("t", Json.String "hello-err"); ("msg", Json.String msg) ]
  | Pong -> Json.Obj [ ("t", Json.String "pong") ]
  | Progress { shard; completed } ->
      Json.Obj
        [
          ("t", Json.String "progress");
          ("shard", Json.Int shard);
          ("completed", Json.Int completed);
        ]
  | Result { shard; payload } ->
      Json.Obj
        [ ("t", Json.String "result"); ("shard", Json.Int shard);
          ("payload", payload);
        ]

let from_worker_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "hello-ok" ->
      let* cells = field "cells" Json.to_int v in
      Ok (Hello_ok { cells })
  | "hello-err" ->
      let* msg = field "msg" Json.to_str v in
      Ok (Hello_err msg)
  | "pong" -> Ok Pong
  | "progress" ->
      let* shard = field "shard" Json.to_int v in
      let* completed = field "completed" Json.to_int v in
      Ok (Progress { shard; completed })
  | "result" -> (
      let* shard = field "shard" Json.to_int v in
      match Json.member "payload" v with
      | Some payload -> Ok (Result { shard; payload })
      | None -> Error "result without a payload")
  | t -> Error (Printf.sprintf "unknown worker message %S" t)

(* ------------------------------------------------------------------ *)
(* Shard payloads                                                       *)
(* ------------------------------------------------------------------ *)

let tag_of_verdict = function
  | Svm.Explore.Clean -> 'C'
  | Svm.Explore.Deadlocked -> 'D'
  | Svm.Explore.Violating _ -> 'V'

let verdict_tag_ok = function 'C' | 'D' | 'V' -> true | _ -> false

let bool_int b = Json.Int (if b then 1 else 0)

let summary_to_json (s : Svm.Explore.task_summary) =
  Json.List
    [
      bool_int s.Svm.Explore.ts_leaf;
      Json.Int s.Svm.Explore.ts_runs;
      Json.Int s.Svm.Explore.ts_truncated;
      bool_int s.Svm.Explore.ts_cex;
      Json.Int s.Svm.Explore.ts_pruned_states;
      Json.Int s.Svm.Explore.ts_pruned_commutes;
      bool_int s.Svm.Explore.ts_exhausted;
    ]

let summary_of_json v =
  match Json.to_list v with
  | Some
      [
        Json.Int leaf;
        Json.Int runs;
        Json.Int truncated;
        Json.Int cex;
        Json.Int pruned_states;
        Json.Int pruned_commutes;
        Json.Int exhausted;
      ]
    when runs >= 0 && truncated >= 0 && pruned_states >= 0
         && pruned_commutes >= 0 ->
      Ok
        {
          Svm.Explore.ts_leaf = leaf <> 0;
          ts_runs = runs;
          ts_truncated = truncated;
          ts_cex = cex <> 0;
          ts_pruned_states = pruned_states;
          ts_pruned_commutes = pruned_commutes;
          ts_exhausted = exhausted <> 0;
        }
  | _ -> Error "task summary must be a list of seven ints"

(* ------------------------------------------------------------------ *)
(* Shard payload validation                                             *)
(* ------------------------------------------------------------------ *)

(* Validate a sweep shard payload for cells [lo, hi): one verdict tag
   per cell. [Ok (Some i)] is the absolute index of the first violating
   cell — the merge cut. Total: worker payloads are wire data. *)
let check_sweep_payload ~lo ~hi payload =
  match payload with
  | Json.String s ->
      let n = hi - lo in
      if String.length s <> n then
        Error
          (Printf.sprintf "expected %d verdict tags, got %d" n
             (String.length s))
      else begin
        let finding = ref None in
        let bad = ref None in
        String.iteri
          (fun i c ->
            if not (verdict_tag_ok c) then begin
              if !bad = None then bad := Some c
            end
            else if c = 'V' && !finding = None then finding := Some (lo + i))
          s;
        match !bad with
        | Some c -> Error (Printf.sprintf "bad verdict tag %C" c)
        | None -> Ok !finding
      end
  | _ -> Error "sweep shard payload must be a tag string"

(* Same for an explore shard: one task summary per task in [lo, hi);
   the cut is the first task that found a counterexample or hit its
   budget. *)
let check_explore_payload ~lo ~hi payload =
  match payload with
  | Json.List l ->
      let n = hi - lo in
      if List.length l <> n then
        Error
          (Printf.sprintf "expected %d task summaries, got %d" n
             (List.length l))
      else begin
        let rec go i finding = function
          | [] -> Ok finding
          | v :: rest -> (
              match summary_of_json v with
              | Error m -> Error m
              | Ok s ->
                  let finding =
                    if
                      finding = None
                      && (s.Svm.Explore.ts_cex || s.Svm.Explore.ts_exhausted)
                    then Some (lo + i)
                    else finding
                  in
                  go (i + 1) finding rest)
        in
        go 0 None l
      end
  | _ -> Error "explore shard payload must be a summary list"

(* ------------------------------------------------------------------ *)
(* Network handshake                                                    *)
(* ------------------------------------------------------------------ *)

let net_magic = "asmsim-net"

(* v2: pongs may carry a metrics snapshot (worker push), and clients may
   ask for live stats (Cs_stats/Sc_stats). The version rides the hello,
   so a v1 peer is rejected with a typed reason at the door — and since
   the registry fingerprint also folds the version in, mixed builds can
   never negotiate past the handshake by accident.
   v3: jobs may embed a DSL scenario source ([job.source], size-capped),
   letting clients submit workloads the server's binary never
   hard-coded. *)
let net_version = 3

type role = Worker_role | Client_role

let role_name = function Worker_role -> "worker" | Client_role -> "client"

type hello = { h_version : int; h_role : role; h_fingerprint : string }

let hello_to_json h =
  Json.Obj
    [
      ("magic", Json.String net_magic);
      ("version", Json.Int h.h_version);
      ("role", Json.String (role_name h.h_role));
      ("fingerprint", Json.String h.h_fingerprint);
    ]

let hello_of_json v =
  let* magic = field "magic" Json.to_str v in
  if not (String.equal magic net_magic) then
    Error (Printf.sprintf "bad magic %S" magic)
  else
    let* h_version = field "version" Json.to_int v in
    let* role = field "role" Json.to_str v in
    let* h_fingerprint = field "fingerprint" Json.to_str v in
    match role with
    | "worker" -> Ok { h_version; h_role = Worker_role; h_fingerprint }
    | "client" -> Ok { h_version; h_role = Client_role; h_fingerprint }
    | r -> Error (Printf.sprintf "unknown role %S" r)

type welcome = Welcome | Rejected of string

let welcome_to_json = function
  | Welcome ->
      Json.Obj
        [ ("t", Json.String "welcome"); ("version", Json.Int net_version) ]
  | Rejected reason ->
      Json.Obj [ ("t", Json.String "reject"); ("reason", Json.String reason) ]

let welcome_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "welcome" -> Ok Welcome
  | "reject" ->
      let* reason = field "reason" Json.to_str v in
      Ok (Rejected reason)
  | t -> Error (Printf.sprintf "unknown handshake reply %S" t)

(* ------------------------------------------------------------------ *)
(* Network worker session (job-tagged)                                  *)
(* ------------------------------------------------------------------ *)

type net_to_worker =
  | Nw_job of { jid : string; job : job }
  | Nw_assign of { jid : string; shard : int; lo : int; hi : int }
  | Nw_ping
  | Nw_shutdown

type net_from_worker =
  | Nf_job_ok of { jid : string; cells : int }
  | Nf_job_err of { jid : string; msg : string }
  | Nf_pong of { metrics : Svm.Json.t option }
  | Nf_progress of { jid : string; shard : int; completed : int }
  | Nf_result of { jid : string; shard : int; payload : Svm.Json.t }

let net_to_worker_to_json = function
  | Nw_job { jid; job } ->
      Json.Obj
        [
          ("t", Json.String "job");
          ("jid", Json.String jid);
          ("job", job_to_json job);
        ]
  | Nw_assign { jid; shard; lo; hi } ->
      Json.Obj
        [
          ("t", Json.String "assign");
          ("jid", Json.String jid);
          ("shard", Json.Int shard);
          ("lo", Json.Int lo);
          ("hi", Json.Int hi);
        ]
  | Nw_ping -> Json.Obj [ ("t", Json.String "ping") ]
  | Nw_shutdown -> Json.Obj [ ("t", Json.String "shutdown") ]

let net_to_worker_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "job" -> (
      let* jid = field "jid" Json.to_str v in
      match Json.member "job" v with
      | Some j ->
          let* job = job_of_json j in
          Ok (Nw_job { jid; job })
      | None -> Error "job frame without a job")
  | "assign" ->
      let* jid = field "jid" Json.to_str v in
      let* shard = field "shard" Json.to_int v in
      let* lo = field "lo" Json.to_int v in
      let* hi = field "hi" Json.to_int v in
      if shard < 0 || lo < 0 || hi < lo then Error "assign range is malformed"
      else Ok (Nw_assign { jid; shard; lo; hi })
  | "ping" -> Ok Nw_ping
  | "shutdown" -> Ok Nw_shutdown
  | t -> Error (Printf.sprintf "unknown server message %S" t)

let net_from_worker_to_json = function
  | Nf_job_ok { jid; cells } ->
      Json.Obj
        [
          ("t", Json.String "job-ok");
          ("jid", Json.String jid);
          ("cells", Json.Int cells);
        ]
  | Nf_job_err { jid; msg } ->
      Json.Obj
        [
          ("t", Json.String "job-err");
          ("jid", Json.String jid);
          ("msg", Json.String msg);
        ]
  | Nf_pong { metrics } ->
      Json.Obj
        (("t", Json.String "pong")
        :: (match metrics with None -> [] | Some m -> [ ("metrics", m) ]))
  | Nf_progress { jid; shard; completed } ->
      Json.Obj
        [
          ("t", Json.String "progress");
          ("jid", Json.String jid);
          ("shard", Json.Int shard);
          ("completed", Json.Int completed);
        ]
  | Nf_result { jid; shard; payload } ->
      Json.Obj
        [
          ("t", Json.String "result");
          ("jid", Json.String jid);
          ("shard", Json.Int shard);
          ("payload", payload);
        ]

let net_from_worker_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "job-ok" ->
      let* jid = field "jid" Json.to_str v in
      let* cells = field "cells" Json.to_int v in
      Ok (Nf_job_ok { jid; cells })
  | "job-err" ->
      let* jid = field "jid" Json.to_str v in
      let* msg = field "msg" Json.to_str v in
      Ok (Nf_job_err { jid; msg })
  | "pong" -> Ok (Nf_pong { metrics = Json.member "metrics" v })
  | "progress" ->
      let* jid = field "jid" Json.to_str v in
      let* shard = field "shard" Json.to_int v in
      let* completed = field "completed" Json.to_int v in
      Ok (Nf_progress { jid; shard; completed })
  | "result" -> (
      let* jid = field "jid" Json.to_str v in
      let* shard = field "shard" Json.to_int v in
      match Json.member "payload" v with
      | Some payload -> Ok (Nf_result { jid; shard; payload })
      | None -> Error "result without a payload")
  | t -> Error (Printf.sprintf "unknown worker message %S" t)

(* ------------------------------------------------------------------ *)
(* Network client session                                               *)
(* ------------------------------------------------------------------ *)

type client_to_server =
  | Cs_submit of { job : job; resume : string option }
  | Cs_stats
  | Cs_pong

type server_to_client =
  | Sc_accepted of { jid : string; cells : int; shard_size : int }
  | Sc_rejected of string
  | Sc_shard of { shard : int; payload : Svm.Json.t }
  | Sc_done of { executed : int; resumed : int }
  | Sc_failed of string
  | Sc_stats of Svm.Json.t
  | Sc_draining
  | Sc_ping

let client_to_server_to_json = function
  | Cs_submit { job; resume } ->
      Json.Obj
        [
          ("t", Json.String "submit");
          ("job", job_to_json job);
          ( "resume",
            match resume with None -> Json.Null | Some id -> Json.String id );
        ]
  | Cs_stats -> Json.Obj [ ("t", Json.String "stats") ]
  | Cs_pong -> Json.Obj [ ("t", Json.String "pong") ]

let client_to_server_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "submit" -> (
      match Json.member "job" v with
      | None -> Error "submit without a job"
      | Some j -> (
          let* job = job_of_json j in
          match Json.member "resume" v with
          | None | Some Json.Null -> Ok (Cs_submit { job; resume = None })
          | Some (Json.String id) -> Ok (Cs_submit { job; resume = Some id })
          | Some _ -> Error "resume must be a job id or null"))
  | "stats" -> Ok Cs_stats
  | "pong" -> Ok Cs_pong
  | t -> Error (Printf.sprintf "unknown client message %S" t)

let server_to_client_to_json = function
  | Sc_accepted { jid; cells; shard_size } ->
      Json.Obj
        [
          ("t", Json.String "accepted");
          ("jid", Json.String jid);
          ("cells", Json.Int cells);
          ("shard_size", Json.Int shard_size);
        ]
  | Sc_rejected reason ->
      Json.Obj [ ("t", Json.String "rejected"); ("reason", Json.String reason) ]
  | Sc_shard { shard; payload } ->
      Json.Obj
        [
          ("t", Json.String "shard");
          ("shard", Json.Int shard);
          ("payload", payload);
        ]
  | Sc_done { executed; resumed } ->
      Json.Obj
        [
          ("t", Json.String "done");
          ("executed", Json.Int executed);
          ("resumed", Json.Int resumed);
        ]
  | Sc_failed msg ->
      Json.Obj [ ("t", Json.String "failed"); ("msg", Json.String msg) ]
  | Sc_stats payload ->
      Json.Obj [ ("t", Json.String "stats"); ("payload", payload) ]
  | Sc_draining -> Json.Obj [ ("t", Json.String "draining") ]
  | Sc_ping -> Json.Obj [ ("t", Json.String "ping") ]

let server_to_client_of_json v =
  let* t = field "t" Json.to_str v in
  match t with
  | "accepted" ->
      let* jid = field "jid" Json.to_str v in
      let* cells = field "cells" Json.to_int v in
      let* shard_size = field "shard_size" Json.to_int v in
      Ok (Sc_accepted { jid; cells; shard_size })
  | "rejected" ->
      let* reason = field "reason" Json.to_str v in
      Ok (Sc_rejected reason)
  | "shard" -> (
      let* shard = field "shard" Json.to_int v in
      match Json.member "payload" v with
      | Some payload -> Ok (Sc_shard { shard; payload })
      | None -> Error "shard without a payload")
  | "done" ->
      let* executed = field "executed" Json.to_int v in
      let* resumed = field "resumed" Json.to_int v in
      Ok (Sc_done { executed; resumed })
  | "failed" ->
      let* msg = field "msg" Json.to_str v in
      Ok (Sc_failed msg)
  | "stats" -> (
      match Json.member "payload" v with
      | Some payload -> Ok (Sc_stats payload)
      | None -> Error "stats without a payload")
  | "draining" -> Ok Sc_draining
  | "ping" -> Ok Sc_ping
  | t -> Error (Printf.sprintf "unknown server reply %S" t)
