(* TCP plumbing shared by the serve daemon and its remote peers:
   address parsing, listening, dialing with a deadline, the client side
   of the handshake, and the network chaos harness. *)

(* ------------------------------------------------------------------ *)
(* Addresses                                                            *)
(* ------------------------------------------------------------------ *)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | None -> Error (Printf.sprintf "%S: port %S is not a number" s port)
      | Some p when p < 0 || p > 65535 ->
          Error (Printf.sprintf "%S: port %d out of range" s p)
      | Some p -> (
          let resolve () =
            if host = "" || host = "*" then Unix.inet_addr_any
            else
              match Unix.inet_addr_of_string host with
              | ip -> ip
              | exception Failure _ -> (
                  match Unix.gethostbyname host with
                  | { Unix.h_addr_list = [||]; _ } -> raise Not_found
                  | h -> h.Unix.h_addr_list.(0))
          in
          match resolve () with
          | ip -> Ok (Unix.ADDR_INET (ip, p))
          | exception Not_found ->
              Error (Printf.sprintf "%S: cannot resolve host %S" s host)))

let string_of_sockaddr = function
  | Unix.ADDR_INET (ip, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) p
  | Unix.ADDR_UNIX p -> p

(* ------------------------------------------------------------------ *)
(* Listening and dialing                                                *)
(* ------------------------------------------------------------------ *)

let listen ?(backlog = 64) addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.set_close_on_exec fd;
     Unix.bind fd addr;
     Unix.listen fd backlog
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> 0
  in
  (fd, port)

let dial ?(timeout = 10.) addr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fail msg =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error msg
  in
  try
    Unix.set_close_on_exec fd;
    Unix.set_nonblock fd;
    (match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
      -> ());
    (* The connect completes (or fails) when the socket turns writable. *)
    match Unix.select [] [ fd ] [] timeout with
    | _, [], _ -> fail "connect timed out"
    | _ -> (
        match Unix.getsockopt_error fd with
        | Some err -> fail (Unix.error_message err)
        | None ->
            Unix.clear_nonblock fd;
            Ok fd)
  with
  | Unix.Unix_error (err, _, _) -> fail (Unix.error_message err)
  | exn ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise exn

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                        *)
(* ------------------------------------------------------------------ *)

type chaos_mode = Drop | Delay | Truncate | Garbage

let chaos_mode_name = function
  | Drop -> "drop"
  | Delay -> "delay"
  | Truncate -> "truncate"
  | Garbage -> "garbage"

let chaos_mode_of_string = function
  | "drop" -> Ok Drop
  | "delay" -> Ok Delay
  | "truncate" -> Ok Truncate
  | "garbage" -> Ok Garbage
  | s -> Error (Printf.sprintf "unknown chaos mode %S" s)

type chaos = { c_mode : chaos_mode; c_every : int; mutable c_count : int }

let chaos ?(every = 7) mode = { c_mode = mode; c_every = max 1 every; c_count = 0 }

exception Chaos_cut

let write_raw fd b off len =
  let rec go off len =
    if len > 0 then begin
      let w =
        try Unix.write fd b off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + w) (len - w)
    end
  in
  go off len

let garbage_bytes = Bytes.of_string (String.init 64 (fun i -> Char.chr (0xc0 lor (i land 0x3f))))

let cut fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  raise Chaos_cut

let chaos_write ?chaos fd v =
  match chaos with
  | None -> Frame.write fd v
  | Some c ->
      c.c_count <- c.c_count + 1;
      if c.c_count mod c.c_every <> 0 then Frame.write fd v
      else begin
        match c.c_mode with
        | Drop -> cut fd
        | Delay ->
            Unix.sleepf 0.05;
            Frame.write fd v
        | Truncate ->
            let b = Frame.encode v in
            write_raw fd b 0 (max 1 (Bytes.length b / 2));
            cut fd
        | Garbage ->
            write_raw fd garbage_bytes 0 (Bytes.length garbage_bytes);
            cut fd
      end

(* ------------------------------------------------------------------ *)
(* Handshake (connecting side)                                          *)
(* ------------------------------------------------------------------ *)

type handshake_error =
  | Hs_rejected of string  (** typed refusal: retrying is pointless *)
  | Hs_link of string  (** the link failed; retrying may succeed *)

let client_handshake ?(timeout = 10.) fd ~role ~fingerprint =
  match
    Frame.write fd
      (Proto.hello_to_json
         {
           Proto.h_version = Proto.net_version;
           h_role = role;
           h_fingerprint = fingerprint;
         })
  with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Hs_link (Unix.error_message err))
  | () -> (
      match Frame.read ~timeout fd with
      | Error e -> Error (Hs_link (Format.asprintf "%a" Frame.pp_error e))
      | Ok v -> (
          match Proto.welcome_of_json v with
          | Error m -> Error (Hs_link ("bad welcome frame: " ^ m))
          | Ok Proto.Welcome -> Ok ()
          | Ok (Proto.Rejected m) -> Error (Hs_rejected m)))
