(** Fold per-shard wire payloads back into final outcomes through the
    exact in-process merge path ({!Svm.Explore.sweep_merge} /
    {!Svm.Explore.merge_plan}).

    Shared by every executor — the fork coordinator, the TCP client —
    so that outcomes are byte-identical to a single-process run no
    matter which transport carried the shards. [payloads.(shard)] is
    the validated payload for that shard, or [None] if it never
    arrived (e.g. past a sweep's finding cut): missing or partial
    cells recompute locally, which is deterministic either way. *)

val sweep :
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  'a Svm.Explore.sweep_plan ->
  shard_size:int ->
  payloads:Svm.Json.t option array ->
  Svm.Explore.sweep_outcome

val explore :
  ?metrics:Svm.Metrics.t ->
  ?on_progress:(runs:int -> unit) ->
  'a Svm.Explore.plan ->
  shard_size:int ->
  payloads:Svm.Json.t option array ->
  'a Svm.Explore.result
