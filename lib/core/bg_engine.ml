open Svm
open Svm.Prog.Syntax

exception Unsupported_op of string

type stats = {
  mutable decided_threads : (int * int) list;
  mutable max_engaged : int;
}

let new_stats () = { decided_threads = []; max_engaged = 0 }

let decided_processes stats =
  List.sort_uniq compare (List.map snd stats.decided_threads)

(* Fold engine-level counters into a run's metrics snapshot, so the
   simulator's mutex1 invariant measurement travels with the rest of the
   telemetry instead of living in a side structure. *)
let fold_metrics m stats =
  Metrics.set_max (Metrics.gauge m "bg.max_engaged") stats.max_engaged;
  Metrics.incr
    ~by:(List.length stats.decided_threads)
    (Metrics.counter m "bg.decided_threads");
  Metrics.incr
    ~by:(List.length (decided_processes stats))
    (Metrics.counter m "bg.decided_processes")

let record_decision stats ~sim ~thread =
  match stats with
  | None -> ()
  | Some s -> s.decided_threads <- (sim, thread) :: s.decided_threads

(* ------------------------------------------------------------------ *)
(* Value representations                                               *)
(* ------------------------------------------------------------------ *)

(* A simulated process writes to its own component of possibly several
   snapshot families; its "virtual memory cell" is therefore a finite map
   from (family, key) to the last value written there. *)
type instance = Op.fam * Op.key

let vmap_codec : (((string * int list) * Univ.t) list) Codec.t =
  Codec.assoc Codec.any

(* MEM[i] (Figure 2): the simulator's local copy of the whole simulated
   memory — for each simulated process, its virtual cell plus the
   sequence number of its last simulated write. *)
let mem_cell_codec = Codec.arr (Codec.option (Codec.pair vmap_codec Codec.int))

(* Values agreed upon for simulated snapshots: a full view of the
   simulated memory (one virtual cell per simulated process). *)
let view_codec = Codec.arr (Codec.option vmap_codec)

(* ------------------------------------------------------------------ *)
(* Per-simulator state                                                 *)
(* ------------------------------------------------------------------ *)

type sim_state = {
  me : int; (* simulator pid in the target model *)
  n_sim : int; (* number of simulated processes *)
  mem : ((instance * Univ.t) list * int) option array; (* memi *)
  snap_sn : int array; (* per simulated process; 0 reserved for inputs *)
  mutex1 : int option ref; (* holder thread of the propose mutex *)
  mutex1_enabled : bool; (* false only under the AB ablation experiment *)
  mutex2 : (instance, int option ref) Hashtbl.t;
      (* Figure 4's mutex2, one per simulated consensus object: it
         protects the one-shot discipline of xres[a] for that object, so
         threads of processes sharing object [a] serialize — but a thread
         blocked in a decide on a crashed object must not stall the
         simulation of processes using other objects (Lemma 1 counts at
         most x blocked processes per crash). *)
  xres : (instance, Univ.t) Hashtbl.t; (* Figure 4's xres cache *)
  snap_ag : Agreement.t; (* SAFE_AG[j, snapsn], j fixed per key *)
  cons_ag : (string, Agreement.t) Hashtbl.t; (* per simulated cons family *)
  target : Model.t;
  engaged : int ref; (* agreement proposes this simulator has in flight *)
  stats : stats option;
}

let make_state ~me ~n_sim ~target ~mutex1_enabled ~stats =
  {
    me;
    n_sim;
    mem = Array.make n_sim None;
    snap_sn = Array.make n_sim 0;
    mutex1 = ref None;
    mutex1_enabled;
    mutex2 = Hashtbl.create 16;
    xres = Hashtbl.create 16;
    snap_ag = Agreement.for_target ~fam:"SA" ~target;
    cons_ag = Hashtbl.create 8;
    target;
    engaged = ref 0;
    stats;
  }

(* Online engagement accounting around every agreement propose. With
   mutex1 the count stays at 1 — the invariant Lemma 1's crash
   accounting rests on; the AB ablation lets it grow, and [max_engaged]
   makes that visible to the experiments instead of only its downstream
   blocking symptom. *)
let engaged_propose st body =
  let open Prog.Syntax in
  st.engaged := !(st.engaged) + 1;
  (match st.stats with
  | Some s when !(st.engaged) > s.max_engaged ->
      s.max_engaged <- !(st.engaged)
  | Some _ | None -> ());
  let* r = body () in
  st.engaged := !(st.engaged) - 1;
  Prog.return r

(* Agreement objects for simulated consensus families are named after the
   simulated family, so every simulator derives the same object
   deterministically. *)
let cons_agreement st fam =
  match Hashtbl.find_opt st.cons_ag fam with
  | Some ag -> ag
  | None ->
      let ag = Agreement.for_target ~fam:("XSA:" ^ fam) ~target:st.target in
      Hashtbl.add st.cons_ag fam ag;
      ag

(* A simulator-local mutex: threads of the same simulator interleave only
   at operation boundaries, so test-and-set on a plain ref is atomic. The
   spin performs a (free) Yield so the thread scheduler can switch. *)
let with_mutex m tid body =
  let rec acquire () =
    match !m with
    | None ->
        m := Some tid;
        Prog.return ()
    | Some _ ->
        let* () = Prog.yield in
        acquire ()
  in
  let* () = acquire () in
  let* r = body () in
  m := None;
  Prog.return r

(* mutex1 guard; the ablation experiment disables it to exhibit how a
   single simulator crash can then block arbitrarily many simulated
   processes (the paper's "simple (and bright) idea", Section 3.2.3). *)
let with_mutex1 st tid body =
  if st.mutex1_enabled then with_mutex st.mutex1 tid body else body ()

(* ------------------------------------------------------------------ *)
(* Figure 2: sim_write                                                 *)
(* ------------------------------------------------------------------ *)

let sim_write st j inst v =
  let vmap, sn = match st.mem.(j) with None -> ([], 0) | Some c -> c in
  let vmap = (inst, v) :: List.remove_assoc inst vmap in
  st.mem.(j) <- Some (vmap, sn + 1);
  Prog.snap_set mem_cell_codec "MEM" [] st.mem

(* ------------------------------------------------------------------ *)
(* Figure 3: sim_snapshot (also agrees inputs, with key [j; 0])        *)
(* ------------------------------------------------------------------ *)

(* Lines 01-03 of Figure 3: snapshot MEM and, for every simulated
   process, keep the virtual cell written by the most advanced
   simulator. *)
let most_advanced_view st smi =
  let input = Array.make st.n_sim None in
  Array.iter
    (fun cell ->
      match cell with
      | None -> ()
      | Some memx ->
          Array.iteri
            (fun y entry ->
              match entry with
              | None -> ()
              | Some (vm, sn) -> (
                  match input.(y) with
                  | Some (_, sn0) when sn0 >= sn -> ()
                  | Some _ | None -> input.(y) <- Some (vm, sn)))
            memx)
    smi;
  Array.map (Option.map fst) input

let sim_snapshot st j inst =
  let* smi = Prog.snap_scan mem_cell_codec "MEM" [] in
  let view = most_advanced_view st smi in
  st.snap_sn.(j) <- st.snap_sn.(j) + 1;
  let key = [ j; st.snap_sn.(j) ] in
  let* () =
    with_mutex1 st j (fun () ->
        engaged_propose st (fun () ->
            st.snap_ag.Agreement.propose ~key ~pid:st.me
              (view_codec.Codec.inj view)))
  in
  let* agreed = st.snap_ag.Agreement.decide ~key ~pid:st.me in
  let agreed = view_codec.Codec.prj agreed in
  Prog.return
    (Array.map (fun vm -> Option.bind vm (List.assoc_opt inst)) agreed)

(* ------------------------------------------------------------------ *)
(* Figures 4 and 8: sim_x_cons_propose                                 *)
(* ------------------------------------------------------------------ *)

let mutex2_for st inst =
  match Hashtbl.find_opt st.mutex2 inst with
  | Some m -> m
  | None ->
      let m = ref None in
      Hashtbl.add st.mutex2 inst m;
      m

let sim_x_cons st j (fam, key) v =
  let inst = (fam, key) in
  with_mutex (mutex2_for st inst) j (fun () ->
      match Hashtbl.find_opt st.xres inst with
      | Some r -> Prog.return r
      | None ->
          let ag = cons_agreement st fam in
          let* () =
            with_mutex1 st j (fun () ->
                engaged_propose st (fun () ->
                    ag.Agreement.propose ~key ~pid:st.me v))
          in
          let* r = ag.Agreement.decide ~key ~pid:st.me in
          Hashtbl.replace st.xres inst r;
          Prog.return r)

(* ------------------------------------------------------------------ *)
(* The per-thread interpreter of the simulated code                    *)
(* ------------------------------------------------------------------ *)

let unsupported what =
  raise
    (Unsupported_op
       (what
      ^ ": not in the canonical operation alphabet (snapshot families, \
         consensus families, yield)"))

let rec interp st j (p : Univ.t Prog.t) : Univ.t Prog.t =
  match p with
  | Prog.Done v -> Prog.return v
  | Prog.Step (op, k) -> run_op st j op k

and run_op :
    type r. sim_state -> int -> r Op.t -> (r -> Univ.t Prog.t) -> Univ.t Prog.t
    =
 fun st j op k ->
  match op with
  | Op.Snap_set (f, key, v) ->
      let* () = sim_write st j (f, key) v in
      interp st j (k ())
  | Op.Snap_scan (f, key) ->
      let* r = sim_snapshot st j (f, key) in
      interp st j (k r)
  | Op.Cons_propose (f, key, v) ->
      let* r = sim_x_cons st j (f, key) v in
      interp st j (k r)
  | Op.Yield ->
      let* () = Prog.yield in
      interp st j (k ())
  | Op.Reg_read _ -> unsupported "register read"
  | Op.Reg_write _ -> unsupported "register write"
  | Op.Ts _ -> unsupported "test&set"
  | Op.Kset_propose _ -> unsupported "k-set propose"
  | Op.Queue_enq _ -> unsupported "queue enqueue"
  | Op.Queue_deq _ -> unsupported "queue dequeue"
  | Op.Cas _ -> unsupported "compare&swap"
  | Op.Oracle_query _ -> unsupported "failure-detector oracle"

(* Thread j of a simulator: agree on pj's input (every simulator proposes
   its own input; colorless validity allows adopting any of them), then
   interpret pj's code. *)
let thread st (source : Algorithm.t) ~my_input j =
  let key = [ j; 0 ] in
  let* () =
    with_mutex1 st j (fun () ->
        engaged_propose st (fun () ->
            st.snap_ag.Agreement.propose ~key ~pid:st.me my_input))
  in
  let* input = st.snap_ag.Agreement.decide ~key ~pid:st.me in
  interp st j (source.Algorithm.code ~pid:j ~input)

(* ------------------------------------------------------------------ *)
(* Driving the threads                                                 *)
(* ------------------------------------------------------------------ *)

let drive_colorless ?stats ~me pool =
  let rec go last =
    match Pool.round_robin_next pool ~after:last with
    | None ->
        (* Unreachable for decision tasks: a thread only finishes by
           deciding, which stops the simulator. *)
        failwith "bg_engine: every simulated process finished undecided"
    | Some tid -> (
        let* r = Pool.step pool ~tid in
        match r with
        | `Done v ->
            record_decision stats ~sim:me ~thread:tid;
            Prog.return v
        | `Stepped | `Finished -> go tid)
  in
  go (-1)

(* Exhaustive mode (used by the lemma-measuring experiments): never stop
   at the first decision; keep simulating every thread. Blocked threads
   spin forever, so the simulator typically ends Blocked at the step
   budget — the decisions it witnessed are in [stats]. If every thread
   does finish, the simulator decides the count. *)
let drive_exhaustive ?stats ~me pool =
  let rec go last =
    match Pool.round_robin_next pool ~after:last with
    | None -> Prog.return (Codec.int.Codec.inj (Pool.size pool))
    | Some tid -> (
        let* r = Pool.step pool ~tid in
        match r with
        | `Done _ ->
            record_decision stats ~sim:me ~thread:tid;
            go tid
        | `Stepped | `Finished -> go tid)
  in
  go (-1)

(* Section 5.5: before competing for a decision, finish the agreement
   propose this simulator may be engaged in, so stopping cannot block
   other simulators. mutex1 guarantees at most one thread is proposing;
   propose sections are wait-free, so stepping the holder terminates. *)
let rec finish_propose st pool =
  match !(st.mutex1) with
  | None -> Prog.return ()
  | Some holder ->
      let* _ = Pool.step pool ~tid:holder in
      finish_propose st pool

let drive_colored ?stats st pool ~decide_ts =
  let rec go last =
    match Pool.round_robin_next pool ~after:last with
    | None -> failwith "bg_engine: lost every test&set yet no processes left"
    | Some tid -> (
        let* r = Pool.step pool ~tid in
        match r with
        | `Stepped | `Finished -> go tid
        | `Done v ->
            record_decision stats ~sim:st.me ~thread:tid;
            let* () = finish_propose st pool in
            let* won =
              Shared_objects.Ts_from_cons.compete decide_ts ~key:[ tid ]
                ~pid:st.me
            in
            if won then Prog.return v else go tid)
  in
  go (-1)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let simulate ?(unchecked = false) ?(ablate_mutex1 = false) ?stats
    ~(source : Algorithm.t) ~target ~mode () =
  let src_model = source.Algorithm.model in
  if not unchecked then begin
    let ok =
      match mode with
      | `Colorless | `Exhaustive ->
          Model.colorless_simulation_ok ~source:src_model ~target
      | `Colored -> Model.colored_simulation_ok ~source:src_model ~target
    in
    if not ok then
      invalid_arg
        (Format.asprintf
           "Bg_engine.simulate: %s cannot be simulated in %s (%s mode): \
            precondition violated"
           (Model.to_string src_model) (Model.to_string target)
           (match mode with
           | `Colorless -> "colorless"
           | `Colored -> "colored"
           | `Exhaustive -> "exhaustive"))
  end;
  let mode_name =
    match mode with
    | `Colorless -> "colorless"
    | `Colored -> "colored"
    | `Exhaustive -> "exhaustive"
  in
  let name =
    Format.asprintf "bg-%s[%s -> %s](%s)" mode_name
      (Model.to_string src_model) (Model.to_string target)
      source.Algorithm.name
  in
  let n_sim = src_model.Model.n in
  let code ~pid ~input =
    let st =
      make_state ~me:pid ~n_sim ~target ~mutex1_enabled:(not ablate_mutex1)
        ~stats
    in
    let threads =
      Array.init n_sim (fun j -> thread st source ~my_input:input j)
    in
    let pool = Pool.make threads in
    match mode with
    | `Colorless -> drive_colorless ?stats ~me:pid pool
    | `Exhaustive -> drive_exhaustive ?stats ~me:pid pool
    | `Colored ->
        let decide_ts =
          Shared_objects.Ts_from_cons.make ~fam:"DECIDE_TS"
            ~participants:target.Model.n
        in
        drive_colored ?stats st pool ~decide_ts
  in
  Algorithm.make ~name ~model:target code
