open Svm

let run ?budget ?record_trace ?allow_kset ?metrics ~(alg : Algorithm.t)
    ~inputs ~adversary () =
  let n = Algorithm.n alg in
  if Array.length inputs <> n then
    invalid_arg
      (Printf.sprintf "Run.run: %d inputs for %d processes"
         (Array.length inputs) n);
  let env = Env.create ~nprocs:n ~x:alg.Algorithm.model.Model.x ?allow_kset () in
  let progs =
    Array.init n (fun pid -> alg.Algorithm.code ~pid ~input:inputs.(pid))
  in
  Exec.run ?budget ?record_trace ?metrics ~env ~adversary progs

let map_outcome f = function
  | Exec.Decided v -> Exec.Decided (f v)
  | Exec.Crashed -> Exec.Crashed
  | Exec.Blocked -> Exec.Blocked
  | Exec.Stuck -> Exec.Stuck

let run_ints ?budget ?record_trace ?allow_kset ?metrics ~alg ~inputs ~adversary
    () =
  let inputs = Array.of_list (List.map Codec.int.Codec.inj inputs) in
  let r =
    run ?budget ?record_trace ?allow_kset ?metrics ~alg ~inputs ~adversary ()
  in
  {
    Exec.outcomes = Array.map (map_outcome Codec.int.Codec.prj) r.Exec.outcomes;
    op_counts = r.Exec.op_counts;
    total_steps = r.Exec.total_steps;
    crashed = r.Exec.crashed;
    stuck = r.Exec.stuck;
    restarts = r.Exec.restarts;
    trace = r.Exec.trace;
  }
