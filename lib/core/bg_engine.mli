(** The generalized BG simulation engine (paper Sections 3, 4 and 5.5).

    [simulate ~source ~target ~mode] turns an algorithm designed for
    [ASM(n, t, x)] into an algorithm for any model [ASM(n', t', x')]
    with [⌊t/x⌋ >= ⌊t'/x'⌋]. Each of the [n'] {e simulators} runs all
    [n] {e simulated} processes as fair cooperative threads and
    reinterprets their shared-memory operations:

    - simulated writes ([Snap_set]) become writes of the simulator's
      whole local view into the shared [MEM] snapshot (Figure 2);
    - simulated snapshots become agreed views through one agreement
      object per (simulated process, sequence number) (Figure 3);
    - simulated consensus-object accesses become one agreement object per
      simulated object (Figures 4 and 8), memoized per simulator and
      protected by the paper's [mutex2];
    - the paper's [mutex1] ensures a simulator is engaged in at most one
      agreement [propose] at a time, so a simulator crash blocks at most
      one agreement object.

    The agreement object type is chosen from the target model
    ({!Agreement.for_target}): plain safe agreement when [x' = 1]
    (Section 3, and the classic BG when additionally [n' = t + 1]),
    x_safe_agreement when [x' > 1] (Section 4). Simulated inputs are
    agreed per simulated process (key [\[j; 0\]]), so every decided
    input is some simulator's input — which colorless validity allows.

    In [`Colorless] mode a simulator decides the first value decided by
    any of its threads. In [`Colored] mode (Section 5.5; requires
    [x' > 1]) a simulator that obtains a simulated decision first
    completes the agreement [propose] it may be engaged in, then competes
    on a test&set associated with the simulated process; it decides only
    if it wins, otherwise it resumes simulating the remaining processes —
    so no two simulators decide the value of the same simulated process.

    The produced algorithm uses only the canonical operation alphabet, so
    simulations compose (Section 5.3's chains). *)

exception Unsupported_op of string
(** Raised (when the produced algorithm runs) if the source algorithm
    uses an operation outside the canonical alphabet. *)

type stats = {
  mutable decided_threads : (int * int) list;
      (** (simulator pid, simulated process) for every simulated decision
          observed by a simulator, in observation order. The lemma-level
          experiments use this to count which simulated processes were
          blocked (Lemmas 1, 2, 7 and 8). *)
  mutable max_engaged : int;
      (** the most agreement [propose]s any single simulator had in
          flight at once — an online measurement of the mutex1 invariant
          ("a simulator is engaged in at most one agreement at a time"):
          1 in any healthy run, more only under the [ablate_mutex1]
          experiment, where it quantifies how many agreements one crash
          could block. *)
}

val new_stats : unit -> stats

val decided_processes : stats -> int list
(** Distinct simulated processes decided at some simulator (sorted). *)

val fold_metrics : Svm.Metrics.t -> stats -> unit
(** Fold the engine stats into a metrics registry: [bg.max_engaged]
    (max gauge — the online mutex1 measurement), [bg.decided_threads]
    and [bg.decided_processes] (counters), so one snapshot carries both
    the executor's and the simulation engine's telemetry. *)

val simulate :
  ?unchecked:bool ->
  ?ablate_mutex1:bool ->
  ?stats:stats ->
  source:Algorithm.t ->
  target:Model.t ->
  mode:[ `Colorless | `Colored | `Exhaustive ] ->
  unit ->
  Algorithm.t
(** Raises [Invalid_argument] if the models do not satisfy the paper's
    precondition for [mode] — unless [unchecked] is set, which the
    negative experiments use to exhibit what goes wrong.

    [ablate_mutex1] disables the paper's mutex1 (ablation experiment AB
    only): a simulator may then be engaged in many agreement proposes at
    once, so one crash can block arbitrarily many simulated processes.

    [`Exhaustive] is [`Colorless] except that simulators never stop at
    their first witnessed decision: they keep simulating every thread
    (and so usually end [Blocked] at the step budget, with the witnessed
    decisions recorded in [stats]). The lemma-measuring experiments use
    it to count exactly which simulated processes a crash pattern
    blocks. *)
