(** Running an algorithm natively in its own model. *)

val run :
  ?budget:int ->
  ?record_trace:bool ->
  ?allow_kset:bool ->
  ?metrics:Svm.Metrics.t ->
  alg:Algorithm.t ->
  inputs:Svm.Univ.t array ->
  adversary:Svm.Adversary.t ->
  unit ->
  Svm.Univ.t Svm.Exec.result
(** [run ~alg ~inputs ~adversary ()] executes the algorithm's [n]
    processes in an environment enforcing the algorithm's model
    ([x]-port discipline etc.). [inputs] must have length [n]. *)

val run_ints :
  ?budget:int ->
  ?record_trace:bool ->
  ?allow_kset:bool ->
  ?metrics:Svm.Metrics.t ->
  alg:Algorithm.t ->
  inputs:int list ->
  adversary:Svm.Adversary.t ->
  unit ->
  int Svm.Exec.result
(** Convenience wrapper for integer-valued tasks. *)
