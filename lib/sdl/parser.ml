(* Recursive-descent parser for the scenario DSL.

   Grammar (see README "Scenario DSL" for the commented version):

     scenario  ::= "scenario" STRING "{" decl* "}"
     decl      ::= "doc" STRING | "nprocs" INT ("min" INT)? | "x" INT
                 | "seeded_bug" | "explore_steps" INT
                 | "objects" "{" objdecl* "}"
                 | "process" ("all" | INT (".." INT)?) "{" stmt* "}"
                 | "property" prop
     objdecl   ::= "reg" NAME | "snap" NAME | "cons" NAME "ports" INT
                 | "ts" NAME | "queue" NAME | "sa" NAME ("no_cancel")?
                 | "xsa" NAME "x" INT ("first_subset_only" |
                                       "static_owners")*
                 | "ac" NAME
     stmt      ::= "let" NAME "=" call | call
                 | "write" NAME key expr | "set" NAME key expr
                 | "enq" NAME key expr | "yield"
                 | "repeat" INT "{" stmt* "}"
                 | "if" expr "{" stmt* "}" ("else" "{" stmt* "}")?
                 | "decide" NAME key   (* object decide, result dropped *)
                 | "decide" expr
     call      ::= "read" NAME key ("default" expr)?
                 | "deq" NAME key ("default" expr)?
                 | "scan_max" NAME key ("default" expr)?
                 | "propose" NAME key expr
                 | "decide" NAME key
                 | "ts" NAME key
     key       ::= "[" ( int { "," int } )? "]"
     prop      ::= "agreement" "in" expr ".." expr
                 | "k_agreement" INT "in" expr ".." expr
                 | "validity" "in" expr ".." expr
                 | "integrity" "in" expr ".." expr
                 | "stall_bound" STRING ("bound" INT)?
     expr      ::= cmp; cmp over (== != < <= > >=), then (+ -), then
                   ( * / % ), atoms: INT, "-" INT, "pid", "nprocs", NAME,
                   "(" expr ")"

   The parser never raises past its public entry points: every failure
   is a typed {!Ast.error} spanning the offending token. The statement
   "decide e" and the call "decide OBJ key" are disambiguated by one
   token of lookahead (an identifier followed by '[' is an object
   decide).

   Sources arrive over the wire, so the recursion that structural
   nesting drives (parenthesized expressions, repeat/if blocks) is
   depth-capped: past {!max_depth} the parser rejects with a typed
   error instead of marching toward Stack_overflow. The entry point
   additionally converts a Stack_overflow — should any other recursion
   ever hit the stack guard first — into a typed error. *)

open Ast

exception Fail of Ast.error

(* Structural nesting cap: parens + blocks. Far above anything a human
   writes, far below the ~20-30k frames that overflow the stack. *)
let max_depth = 64

type st = { toks : Lexer.lexed array; mutable pos : int; mutable depth : int }

let cur st = st.toks.(st.pos)

let cur_span st = (cur st).Lexer.span

let fail_at span msg = raise (Fail { e_span = span; e_msg = msg })

let fail st msg = fail_at (cur_span st) msg

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let deepen st =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then
    fail st
      (Printf.sprintf "nesting deeper than %d levels is not allowed" max_depth)

let undeepen st = st.depth <- st.depth - 1

let expect st tok what =
  let t = cur st in
  if t.Lexer.tok = tok then (
    advance st;
    t.Lexer.span)
  else
    fail st
      (Printf.sprintf "expected %s but found %s" what
         (Lexer.token_name t.Lexer.tok))

let expect_int st what =
  match (cur st).Lexer.tok with
  | Lexer.INT n ->
      let sp = cur_span st in
      advance st;
      (n, sp)
  | t -> fail st (Printf.sprintf "expected %s but found %s" what
                    (Lexer.token_name t))

let expect_ident st what =
  match (cur st).Lexer.tok with
  | Lexer.IDENT s ->
      let sp = cur_span st in
      advance st;
      (s, sp)
  | t -> fail st (Printf.sprintf "expected %s but found %s" what
                    (Lexer.token_name t))

let expect_string st what =
  match (cur st).Lexer.tok with
  | Lexer.STRING s ->
      let sp = cur_span st in
      advance st;
      (s, sp)
  | t -> fail st (Printf.sprintf "expected %s but found %s" what
                    (Lexer.token_name t))

(* A signed integer literal (keys, loop bounds). *)
let expect_signed_int st what =
  match (cur st).Lexer.tok with
  | Lexer.MINUS ->
      advance st;
      let n, sp = expect_int st what in
      (-n, sp)
  | _ -> expect_int st what

let span_join a b = { s_start = a.s_start; s_end = b.s_end }

(* ---- expressions ---- *)

let rec parse_expr st = parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (cur st).Lexer.tok with
    | Lexer.EQEQ -> Some Eq
    | Lexer.NE -> Some Ne
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      let rhs = parse_add st in
      {
        e_desc = Binop (op, lhs, rhs);
        e_span = span_join lhs.e_span rhs.e_span;
      }

and parse_add st =
  let rec go lhs =
    let op =
      match (cur st).Lexer.tok with
      | Lexer.PLUS -> Some Add
      | Lexer.MINUS -> Some Sub
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        advance st;
        let rhs = parse_mul st in
        go
          {
            e_desc = Binop (op, lhs, rhs);
            e_span = span_join lhs.e_span rhs.e_span;
          }
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    let op =
      match (cur st).Lexer.tok with
      | Lexer.STAR -> Some Mul
      | Lexer.SLASH -> Some Div
      | Lexer.PERCENT -> Some Mod
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
        advance st;
        let rhs = parse_atom st in
        go
          {
            e_desc = Binop (op, lhs, rhs);
            e_span = span_join lhs.e_span rhs.e_span;
          }
  in
  go (parse_atom st)

and parse_atom st =
  let sp = cur_span st in
  match (cur st).Lexer.tok with
  | Lexer.INT n ->
      advance st;
      { e_desc = Int n; e_span = sp }
  | Lexer.MINUS ->
      advance st;
      let n, sp2 = expect_int st "an integer after unary '-'" in
      { e_desc = Int (-n); e_span = span_join sp sp2 }
  | Lexer.IDENT "pid" ->
      advance st;
      { e_desc = Pid; e_span = sp }
  | Lexer.IDENT "nprocs" ->
      advance st;
      { e_desc = Nprocs; e_span = sp }
  | Lexer.IDENT v ->
      advance st;
      { e_desc = Var v; e_span = sp }
  | Lexer.LPAREN ->
      advance st;
      deepen st;
      let e = parse_expr st in
      undeepen st;
      let sp2 = expect st Lexer.RPAREN "')'" in
      { e with e_span = span_join sp sp2 }
  | t ->
      fail st
        (Printf.sprintf "expected an expression but found %s"
           (Lexer.token_name t))

(* ---- keys ---- *)

let parse_key st =
  let _ = expect st Lexer.LBRACK "a key '[...]'" in
  match (cur st).Lexer.tok with
  | Lexer.RBRACK ->
      advance st;
      []
  | _ ->
      let rec go acc =
        let n, _ = expect_signed_int st "a key component (integer)" in
        match (cur st).Lexer.tok with
        | Lexer.COMMA ->
            advance st;
            go (n :: acc)
        | _ ->
            let _ = expect st Lexer.RBRACK "']'" in
            List.rev (n :: acc)
      in
      go []

(* ---- calls ---- *)

let parse_default st =
  match (cur st).Lexer.tok with
  | Lexer.IDENT "default" ->
      advance st;
      Some (parse_expr st)
  | _ -> None

let parse_call st kw sp0 : call =
  match kw with
  | "read" ->
      let obj, _ = expect_ident st "an object name after 'read'" in
      let key = parse_key st in
      let default = parse_default st in
      { c_desc = Read { obj; key; default }; c_span = sp0 }
  | "deq" ->
      let obj, _ = expect_ident st "an object name after 'deq'" in
      let key = parse_key st in
      let default = parse_default st in
      { c_desc = Deq { obj; key; default }; c_span = sp0 }
  | "scan_max" ->
      let obj, _ = expect_ident st "an object name after 'scan_max'" in
      let key = parse_key st in
      let default = parse_default st in
      { c_desc = Scan_max { obj; key; default }; c_span = sp0 }
  | "propose" ->
      let obj, _ = expect_ident st "an object name after 'propose'" in
      let key = parse_key st in
      let value = parse_expr st in
      { c_desc = Propose { obj; key; value }; c_span = sp0 }
  | "decide" ->
      let obj, _ = expect_ident st "an object name after 'decide'" in
      let key = parse_key st in
      { c_desc = Decide_obj { obj; key }; c_span = sp0 }
  | "ts" ->
      let obj, _ = expect_ident st "an object name after 'ts'" in
      let key = parse_key st in
      { c_desc = Ts_call { obj; key }; c_span = sp0 }
  | kw ->
      fail_at sp0
        (Printf.sprintf
           "expected an op call (read, deq, scan_max, propose, decide, ts) \
            but found %S"
           kw)

let is_call_kw = function
  | "read" | "deq" | "scan_max" | "propose" | "ts" -> true
  | _ -> false

(* ---- statements ---- *)

let rec parse_stmts st : stmt list =
  match (cur st).Lexer.tok with
  | Lexer.RBRACE | Lexer.EOF -> []
  | _ ->
      let s = parse_stmt st in
      s :: parse_stmts st

and parse_block st what =
  let _ = expect st Lexer.LBRACE (Printf.sprintf "'{' to open %s" what) in
  deepen st;
  let body = parse_stmts st in
  undeepen st;
  let _ = expect st Lexer.RBRACE (Printf.sprintf "'}' to close %s" what) in
  body

and parse_stmt st : stmt =
  let sp0 = cur_span st in
  match (cur st).Lexer.tok with
  | Lexer.IDENT "let" ->
      advance st;
      let v, _ = expect_ident st "a variable name after 'let'" in
      if v = "pid" || v = "nprocs" then
        fail_at sp0 (Printf.sprintf "cannot rebind the builtin %S" v);
      let _ = expect st Lexer.ASSIGN "'='" in
      let kw, ksp = expect_ident st "an op call after '='" in
      let c = parse_call st kw ksp in
      { st_desc = Let (v, c); st_span = span_join sp0 c.c_span }
  | Lexer.IDENT "write" ->
      advance st;
      let obj, _ = expect_ident st "an object name after 'write'" in
      let key = parse_key st in
      let value = parse_expr st in
      { st_desc = Write { obj; key; value }; st_span = sp0 }
  | Lexer.IDENT "set" ->
      advance st;
      let obj, _ = expect_ident st "an object name after 'set'" in
      let key = parse_key st in
      let value = parse_expr st in
      { st_desc = Set { obj; key; value }; st_span = sp0 }
  | Lexer.IDENT "enq" ->
      advance st;
      let obj, _ = expect_ident st "an object name after 'enq'" in
      let key = parse_key st in
      let value = parse_expr st in
      { st_desc = Enq { obj; key; value }; st_span = sp0 }
  | Lexer.IDENT "yield" ->
      advance st;
      { st_desc = Yield; st_span = sp0 }
  | Lexer.IDENT "repeat" ->
      advance st;
      let n, _ = expect_int st "a loop bound (integer) after 'repeat'" in
      let body = parse_block st "the repeat body" in
      { st_desc = Repeat (n, body); st_span = sp0 }
  | Lexer.IDENT "if" ->
      advance st;
      let cond = parse_expr st in
      let then_ = parse_block st "the if branch" in
      let else_ =
        match (cur st).Lexer.tok with
        | Lexer.IDENT "else" ->
            advance st;
            parse_block st "the else branch"
        | _ -> []
      in
      { st_desc = If (cond, then_, else_); st_span = sp0 }
  | Lexer.IDENT "decide" -> (
      advance st;
      (* One token of lookahead disambiguates: "decide OBJ [key]" (an
         identifier followed by '[') is the object decide — at
         statement level its result is dropped, mirroring what
         Pretty prints for an unbound [Decide_obj] call — while
         anything else is the terminal decide of the decision value. *)
      let next_tok =
        if st.pos + 1 < Array.length st.toks then
          st.toks.(st.pos + 1).Lexer.tok
        else Lexer.EOF
      in
      match ((cur st).Lexer.tok, next_tok) with
      | Lexer.IDENT _, Lexer.LBRACK ->
          let c = parse_call st "decide" sp0 in
          { st_desc = Call c; st_span = span_join sp0 c.c_span }
      | _ ->
          let e = parse_expr st in
          { st_desc = Decide e; st_span = span_join sp0 e.e_span })
  | Lexer.IDENT kw when is_call_kw kw ->
      advance st;
      let c = parse_call st kw sp0 in
      { st_desc = Call c; st_span = span_join sp0 c.c_span }
  | t ->
      fail st
        (Printf.sprintf "expected a statement but found %s"
           (Lexer.token_name t))

(* ---- object declarations ---- *)

let parse_obj_name st kind =
  let name, sp = expect_ident st (Printf.sprintf "a name after '%s'" kind) in
  if
    List.mem name
      [
        "reg"; "snap"; "cons"; "ts"; "queue"; "sa"; "xsa"; "ac"; "pid";
        "nprocs"; "all"; "let"; "decide";
      ]
  then fail_at sp (Printf.sprintf "%S cannot be used as an object name" name);
  (name, sp)

let parse_obj_decl st : obj_decl =
  let kind, sp0 = expect_ident st "an object kind" in
  match kind with
  | "reg" ->
      let o_name, _ = parse_obj_name st kind in
      { o_name; o_kind = Reg; o_span = sp0 }
  | "snap" ->
      let o_name, _ = parse_obj_name st kind in
      { o_name; o_kind = Snap; o_span = sp0 }
  | "ts" ->
      let o_name, _ = parse_obj_name st kind in
      { o_name; o_kind = Ts; o_span = sp0 }
  | "queue" ->
      let o_name, _ = parse_obj_name st kind in
      { o_name; o_kind = Queue; o_span = sp0 }
  | "ac" ->
      let o_name, _ = parse_obj_name st kind in
      { o_name; o_kind = Ac; o_span = sp0 }
  | "cons" ->
      let o_name, _ = parse_obj_name st kind in
      (match (cur st).Lexer.tok with
      | Lexer.IDENT "ports" -> advance st
      | t ->
          fail st
            (Printf.sprintf "expected 'ports' after the cons name but found %s"
               (Lexer.token_name t)));
      let ports, _ = expect_int st "the port count" in
      { o_name; o_kind = Cons { ports }; o_span = sp0 }
  | "sa" ->
      let o_name, _ = parse_obj_name st kind in
      let no_cancel =
        match (cur st).Lexer.tok with
        | Lexer.IDENT "no_cancel" ->
            advance st;
            true
        | _ -> false
      in
      { o_name; o_kind = Sa { no_cancel }; o_span = sp0 }
  | "xsa" ->
      let o_name, _ = parse_obj_name st kind in
      (match (cur st).Lexer.tok with
      | Lexer.IDENT "x" -> advance st
      | t ->
          fail st
            (Printf.sprintf "expected 'x' after the xsa name but found %s"
               (Lexer.token_name t)));
      let x, _ = expect_int st "the xsa arity" in
      let first = ref false and static = ref false in
      let rec flags () =
        match (cur st).Lexer.tok with
        | Lexer.IDENT "first_subset_only" ->
            advance st;
            first := true;
            flags ()
        | Lexer.IDENT "static_owners" ->
            advance st;
            static := true;
            flags ()
        | _ -> ()
      in
      flags ();
      {
        o_name;
        o_kind = Xsa { x; first_subset_only = !first; static_owners = !static };
        o_span = sp0;
      }
  | k ->
      fail_at sp0
        (Printf.sprintf
           "unknown object kind %S (known: reg, snap, cons, ts, queue, sa, \
            xsa, ac)"
           k)

(* ---- properties ---- *)

let expect_in st =
  match (cur st).Lexer.tok with
  | Lexer.IDENT "in" -> advance st
  | t ->
      fail st
        (Printf.sprintf "expected 'in' before the value range but found %s"
           (Lexer.token_name t))

let parse_range st =
  expect_in st;
  let lo = parse_expr st in
  let _ = expect st Lexer.DOTDOT "'..' between the range bounds" in
  let hi = parse_expr st in
  (lo, hi)

let parse_prop st : prop =
  let kw, sp0 = expect_ident st "a property name" in
  match kw with
  | "agreement" ->
      let lo, hi = parse_range st in
      { p_desc = Agreement { lo; hi }; p_span = sp0 }
  | "k_agreement" ->
      let k, _ = expect_int st "k (integer) after 'k_agreement'" in
      let lo, hi = parse_range st in
      { p_desc = K_agreement { k; lo; hi }; p_span = sp0 }
  | "validity" ->
      let lo, hi = parse_range st in
      { p_desc = Validity { lo; hi }; p_span = sp0 }
  | "integrity" ->
      let lo, hi = parse_range st in
      { p_desc = Integrity { lo; hi }; p_span = sp0 }
  | "stall_bound" ->
      let prefix, _ = expect_string st "the family prefix (string)" in
      let bound =
        match (cur st).Lexer.tok with
        | Lexer.IDENT "bound" ->
            advance st;
            fst (expect_int st "the stall bound")
        | _ -> 1
      in
      { p_desc = Stall_bound { prefix; bound }; p_span = sp0 }
  | k ->
      fail_at sp0
        (Printf.sprintf
           "unknown property %S (known: agreement, k_agreement, validity, \
            integrity, stall_bound)"
           k)

(* ---- scenario ---- *)

type partial = {
  mutable p_doc : string option;
  mutable p_nprocs : (int * int) option;  (** default, min *)
  mutable p_x : int option;
  mutable p_seeded : bool;
  mutable p_steps : int option;
  mutable p_objects : obj_decl list;  (** reversed *)
  mutable p_procs : proc_block list;  (** reversed *)
  mutable p_props : prop list;  (** reversed *)
}

let parse_proc_sel st =
  match (cur st).Lexer.tok with
  | Lexer.IDENT "all" ->
      advance st;
      All
  | Lexer.INT lo -> (
      advance st;
      match (cur st).Lexer.tok with
      | Lexer.DOTDOT ->
          advance st;
          let hi, _ = expect_int st "the last pid of the range" in
          Range (lo, hi)
      | _ -> Range (lo, lo))
  | t ->
      fail st
        (Printf.sprintf
           "expected 'all', a pid, or a pid range after 'process' but found \
            %s"
           (Lexer.token_name t))

let dup st sp what =
  ignore st;
  fail_at sp (Printf.sprintf "duplicate %s declaration" what)

let parse_decl st (p : partial) =
  let sp0 = cur_span st in
  let kw, _ = expect_ident st "a scenario declaration" in
  match kw with
  | "doc" ->
      if p.p_doc <> None then dup st sp0 "doc";
      let s, _ = expect_string st "the doc string" in
      p.p_doc <- Some s
  | "nprocs" ->
      if p.p_nprocs <> None then dup st sp0 "nprocs";
      let n, _ = expect_int st "the process count" in
      let min =
        match (cur st).Lexer.tok with
        | Lexer.IDENT "min" ->
            advance st;
            fst (expect_int st "the minimum process count")
        | _ -> n
      in
      p.p_nprocs <- Some (n, min)
  | "x" ->
      if p.p_x <> None then dup st sp0 "x";
      let x, _ = expect_int st "the consensus arity x" in
      p.p_x <- Some x
  | "seeded_bug" ->
      if p.p_seeded then dup st sp0 "seeded_bug";
      p.p_seeded <- true
  | "explore_steps" ->
      if p.p_steps <> None then dup st sp0 "explore_steps";
      let d, _ = expect_int st "the exploration depth" in
      p.p_steps <- Some d
  | "objects" ->
      let _ = expect st Lexer.LBRACE "'{' to open the objects block" in
      let rec go () =
        match (cur st).Lexer.tok with
        | Lexer.RBRACE ->
            advance st;
            ()
        | _ ->
            p.p_objects <- parse_obj_decl st :: p.p_objects;
            go ()
      in
      go ()
  | "process" ->
      let sel = parse_proc_sel st in
      let body = parse_block st "the process body" in
      p.p_procs <-
        { pb_sel = sel; pb_body = body; pb_span = sp0 } :: p.p_procs
  | "property" -> p.p_props <- parse_prop st :: p.p_props
  | k ->
      fail_at sp0
        (Printf.sprintf
           "unknown declaration %S (known: doc, nprocs, x, seeded_bug, \
            explore_steps, objects, process, property)"
           k)

let parse_scenario st : scenario =
  let sp0 = cur_span st in
  (match (cur st).Lexer.tok with
  | Lexer.IDENT "scenario" -> advance st
  | t ->
      fail st
        (Printf.sprintf "expected 'scenario' but found %s" (Lexer.token_name t)));
  let name, nsp = expect_string st "the scenario name (string)" in
  if name = "" then fail_at nsp "the scenario name must not be empty";
  let _ = expect st Lexer.LBRACE "'{' to open the scenario" in
  let p =
    {
      p_doc = None;
      p_nprocs = None;
      p_x = None;
      p_seeded = false;
      p_steps = None;
      p_objects = [];
      p_procs = [];
      p_props = [];
    }
  in
  let rec go () =
    match (cur st).Lexer.tok with
    | Lexer.RBRACE ->
        advance st;
        ()
    | Lexer.EOF -> fail st "unexpected end of input inside the scenario"
    | _ ->
        parse_decl st p;
        go ()
  in
  go ();
  let sp_end = cur_span st in
  let nprocs, min_nprocs =
    match p.p_nprocs with
    | Some nm -> nm
    | None -> fail_at sp0 "the scenario declares no 'nprocs'"
  in
  let x =
    match p.p_x with
    | Some x -> x
    | None -> fail_at sp0 "the scenario declares no 'x'"
  in
  {
    sc_name = name;
    sc_doc = Option.value ~default:"" p.p_doc;
    sc_nprocs = nprocs;
    sc_min_nprocs = min_nprocs;
    sc_x = x;
    sc_seeded_bug = p.p_seeded;
    sc_explore_steps = Option.value ~default:10 p.p_steps;
    sc_objects = List.rev p.p_objects;
    sc_procs = List.rev p.p_procs;
    sc_props = List.rev p.p_props;
    sc_span = span_join sp0 sp_end;
  }

let parse src : (scenario, Ast.error) result =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks; pos = 0; depth = 0 } in
      match parse_scenario st with
      | sc -> (
          match (cur st).Lexer.tok with
          | Lexer.EOF -> Ok sc
          | t ->
              Error
                {
                  e_span = cur_span st;
                  e_msg =
                    Printf.sprintf
                      "trailing input after the scenario: found %s"
                      (Lexer.token_name t);
                })
      | exception Fail e -> Error e
      | exception Stack_overflow ->
          (* belt and braces under the depth cap: never let a deep
             source crash a caller (the server accepts sources over
             the wire) *)
          Error
            {
              e_span = cur_span st;
              e_msg = "the source nests too deeply to parse";
            })
