(* Typed AST of the scenario DSL.

   Every node carries the source span it was parsed from, so the
   validator and compiler report errors against the text the user
   wrote, never against an internal representation. Spans are
   half-open in columns and 1-based in both coordinates, matching
   what editors display. *)

type pos = { line : int; col : int }

type span = { s_start : pos; s_end : pos }

let dummy_pos = { line = 0; col = 0 }
let dummy_span = { s_start = dummy_pos; s_end = dummy_pos }

(* A typed, spanned error — the only failure shape the whole frontend
   (lexer, parser, validator, compiler) is allowed to produce. *)
type error = { e_span : span; e_msg : string }

let pp_error ppf e =
  Format.fprintf ppf "%d:%d-%d:%d: %s" e.e_span.s_start.line
    e.e_span.s_start.col e.e_span.s_end.line e.e_span.s_end.col e.e_msg

let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Integer-valued expressions. Comparisons evaluate to 0/1; [if] treats
   any nonzero value as true. [Pid]/[Nprocs] are the two ambient
   constants; [Var] refers to a [let]-bound op result. *)

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge

type expr = { e_desc : expr_desc; e_span : span }

and expr_desc =
  | Int of int
  | Pid
  | Nprocs
  | Var of string
  | Binop of binop * expr * expr

(* ------------------------------------------------------------------ *)
(* Object declarations                                                 *)
(* ------------------------------------------------------------------ *)

(* The object families of the registry. The declared name doubles as
   the {!Svm.Op.fam} family string, so a DSL scenario that names its
   objects like a builtin scenario produces the identical op stream. *)
type obj_kind =
  | Reg  (** single register family *)
  | Snap  (** single-writer snapshot memory *)
  | Cons of { ports : int }  (** x-ported consensus; [ports <= x] *)
  | Ts  (** test&set (consensus number 2; needs x >= 2) *)
  | Queue  (** FIFO queue (consensus number 2; needs x >= 2) *)
  | Sa of { no_cancel : bool }
      (** Figure 1 safe agreement; [no_cancel] selects the seeded-bug
          propose ablation *)
  | Xsa of { x : int; first_subset_only : bool; static_owners : bool }
      (** Figure 6 x_safe_agreement over all [nprocs] participants *)
  | Ac  (** one-shot adopt-commit *)

type obj_decl = { o_name : string; o_kind : obj_kind; o_span : span }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type key = int list

(* Op calls that produce an int and can be [let]-bound. *)
type call = { c_desc : call_desc; c_span : span }

and call_desc =
  | Read of { obj : string; key : key; default : expr option }
      (** register read; [default] when the cell is unwritten (0) *)
  | Deq of { obj : string; key : key; default : expr option }
      (** queue dequeue; [default] when empty (0) *)
  | Propose of { obj : string; key : key; value : expr }
      (** sa/xsa/ac propose (unit result, binds 0), cons propose
          (binds the decided value), ac propose (binds the
          adopted-or-committed value) *)
  | Decide_obj of { obj : string; key : key }
      (** sa/xsa decide: binds the decided value *)
  | Ts_call of { obj : string; key : key }  (** 1 iff this pid won *)
  | Scan_max of { obj : string; key : key; default : expr option }
      (** snapshot scan reduced to the max of the present entries *)

type stmt = { st_desc : stmt_desc; st_span : span }

and stmt_desc =
  | Let of string * call
  | Call of call  (** result discarded *)
  | Write of { obj : string; key : key; value : expr }
  | Set of { obj : string; key : key; value : expr }
      (** snapshot single-writer set of this pid's component *)
  | Enq of { obj : string; key : key; value : expr }
  | Yield
  | Repeat of int * stmt list  (** statically bounded loop *)
  | If of expr * stmt list * stmt list
  | Decide of expr  (** terminate this process with the value *)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* The closed combinator set over {!Svm.Explore.run}. Range bounds are
   expressions over [nprocs] only (no [pid], no variables), resolved
   once per scenario size. Each property contributes online monitors
   and a pure run predicate; the scenario's [exhaustive_property] is
   their conjunction. None of them ever inspects [Explore.schedule],
   so every compiled property is sound under the explorer's prunings. *)
type prop = { p_desc : prop_desc; p_span : span }

and prop_desc =
  | Agreement of { lo : expr; hi : expr }
      (** at most one decided value, all within [lo..hi] *)
  | K_agreement of { k : int; lo : expr; hi : expr }
      (** at most [k] distinct decided values, all within [lo..hi] *)
  | Validity of { lo : expr; hi : expr }
      (** every decided value within [lo..hi] *)
  | Integrity of { lo : expr; hi : expr }
      (** every {e honest} decided value within [lo..hi]
          (Byzantine-aware validity) *)
  | Stall_bound of { prefix : string; bound : int }
      (** at most [bound] processes halted inside any one instance
          whose family starts with [prefix] (monitor-only) *)

(* ------------------------------------------------------------------ *)
(* Process blocks and the scenario                                     *)
(* ------------------------------------------------------------------ *)

type proc_sel =
  | All
  | Range of int * int  (** inclusive pid range; a single pid is p..p *)

type proc_block = { pb_sel : proc_sel; pb_body : stmt list; pb_span : span }

type scenario = {
  sc_name : string;
  sc_doc : string;
  sc_nprocs : int;  (** default size *)
  sc_min_nprocs : int;  (** smallest size [find ~nprocs] may resize to *)
  sc_x : int;
  sc_seeded_bug : bool;
  sc_explore_steps : int;
  sc_objects : obj_decl list;
  sc_procs : proc_block list;
  sc_props : prop list;
  sc_span : span;
}

(* Structural equality that ignores spans — what the fmt→parse
   round-trip test checks. *)

let rec strip_expr e =
  match e.e_desc with
  | Int _ | Pid | Nprocs | Var _ -> { e with e_span = dummy_span }
  | Binop (op, a, b) ->
      { e_desc = Binop (op, strip_expr a, strip_expr b); e_span = dummy_span }

let strip_call c =
  let d =
    match c.c_desc with
    | Read r -> Read { r with default = Option.map strip_expr r.default }
    | Deq r -> Deq { r with default = Option.map strip_expr r.default }
    | Propose p -> Propose { p with value = strip_expr p.value }
    | Decide_obj _ | Ts_call _ -> c.c_desc
    | Scan_max r ->
        Scan_max { r with default = Option.map strip_expr r.default }
  in
  { c_desc = d; c_span = dummy_span }

let rec strip_stmt st =
  let d =
    match st.st_desc with
    | Let (v, c) -> Let (v, strip_call c)
    | Call c -> Call (strip_call c)
    | Write w -> Write { w with value = strip_expr w.value }
    | Set s -> Set { s with value = strip_expr s.value }
    | Enq e -> Enq { e with value = strip_expr e.value }
    | Yield -> Yield
    | Repeat (n, body) -> Repeat (n, List.map strip_stmt body)
    | If (c, t, e) ->
        If (strip_expr c, List.map strip_stmt t, List.map strip_stmt e)
    | Decide e -> Decide (strip_expr e)
  in
  { st_desc = d; st_span = dummy_span }

let strip_prop p =
  let d =
    match p.p_desc with
    | Agreement { lo; hi } ->
        Agreement { lo = strip_expr lo; hi = strip_expr hi }
    | K_agreement { k; lo; hi } ->
        K_agreement { k; lo = strip_expr lo; hi = strip_expr hi }
    | Validity { lo; hi } -> Validity { lo = strip_expr lo; hi = strip_expr hi }
    | Integrity { lo; hi } ->
        Integrity { lo = strip_expr lo; hi = strip_expr hi }
    | Stall_bound _ -> p.p_desc
  in
  { p_desc = d; p_span = dummy_span }

let strip sc =
  {
    sc with
    sc_span = dummy_span;
    sc_objects =
      List.map (fun o -> { o with o_span = dummy_span }) sc.sc_objects;
    sc_procs =
      List.map
        (fun pb ->
          {
            pb with
            pb_span = dummy_span;
            pb_body = List.map strip_stmt pb.pb_body;
          })
        sc.sc_procs;
    sc_props = List.map strip_prop sc.sc_props;
  }

let equal_ignoring_spans a b = strip a = strip b
