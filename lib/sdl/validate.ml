(* Static validation of a parsed scenario — everything that can be
   rejected before a single operation executes.

   Checked here:
   - model sanity: nprocs/min/x bounds;
   - object declarations: unique names, cons port counts within the
     model's x, consensus-number-2 objects (ts, queue) only when
     x >= 2, xsa arity within the model;
   - process blocks: every pid in [0, nprocs) covered by exactly one
     block (checked again by {!Compile} at every resize);
   - statements: objects exist and are used at the right kind, let
     variables are in scope, loop bounds are positive and the total
     statically-unrolled size is capped (a submission-safety bound —
     DSL sources are accepted over the wire);
   - best-effort static port discipline: an unconditional propose on a
     consensus object from more distinct pids than it has ports is
     rejected here (the environment still enforces the dynamic rule);
   - properties: at least one, range bounds are closed over [nprocs]
     only, k and stall bounds positive;
   - termination: every process body decides on every path, with no
     unreachable statements after a decide.

   All failures are typed {!Ast.error}s. *)

open Ast

exception Reject of Ast.error

let reject span msg = raise (Reject { e_span = span; e_msg = msg })

let rejectf span fmt = Printf.ksprintf (reject span) fmt

(* The statically-unrolled statement budget: repeat bodies multiply. *)
let max_unrolled = 10_000

let max_repeat = 256

let find_obj objs name = List.find_opt (fun o -> o.o_name = name) objs

let kind_name = function
  | Reg -> "reg"
  | Snap -> "snap"
  | Cons _ -> "cons"
  | Ts -> "ts"
  | Queue -> "queue"
  | Sa _ -> "sa"
  | Xsa _ -> "xsa"
  | Ac -> "ac"

(* ---- expressions ---- *)

let rec check_expr ~vars e =
  match e.e_desc with
  | Int _ | Pid | Nprocs -> ()
  | Var v ->
      if not (List.mem v vars) then
        rejectf e.e_span "unbound variable %S (bind it with 'let %s = ...')" v
          v
  | Binop (_, a, b) ->
      check_expr ~vars a;
      check_expr ~vars b

(* Property ranges close over nprocs only: they are evaluated once per
   scenario size, outside any process. *)
let rec check_size_expr what e =
  match e.e_desc with
  | Int _ | Nprocs -> ()
  | Pid -> rejectf e.e_span "%s cannot depend on 'pid'" what
  | Var v -> rejectf e.e_span "%s cannot reference the variable %S" what v
  | Binop (_, a, b) ->
      check_size_expr what a;
      check_size_expr what b

(* ---- calls and statements ---- *)

let check_obj_use objs span ~verb name ok =
  match find_obj objs name with
  | None -> rejectf span "unknown object %S in '%s'" name verb
  | Some o ->
      if not (ok o.o_kind) then
        rejectf span "'%s' does not apply to the %s object %S" verb
          (kind_name o.o_kind) name

let check_call objs ~vars c =
  match c.c_desc with
  | Read { obj; key = _; default } ->
      check_obj_use objs c.c_span ~verb:"read" obj (function
        | Reg -> true
        | _ -> false);
      Option.iter (check_expr ~vars) default
  | Deq { obj; key = _; default } ->
      check_obj_use objs c.c_span ~verb:"deq" obj (function
        | Queue -> true
        | _ -> false);
      Option.iter (check_expr ~vars) default
  | Scan_max { obj; key = _; default } ->
      check_obj_use objs c.c_span ~verb:"scan_max" obj (function
        | Snap -> true
        | _ -> false);
      Option.iter (check_expr ~vars) default
  | Propose { obj; key = _; value } ->
      check_obj_use objs c.c_span ~verb:"propose" obj (function
        | Sa _ | Xsa _ | Ac | Cons _ -> true
        | _ -> false);
      check_expr ~vars value
  | Decide_obj { obj; key = _ } ->
      check_obj_use objs c.c_span ~verb:"decide" obj (function
        | Sa _ | Xsa _ -> true
        | _ -> false)
  | Ts_call { obj; key = _ } ->
      check_obj_use objs c.c_span ~verb:"ts" obj (function
        | Ts -> true
        | _ -> false)

(* A decide anywhere inside the body — including nested in if branches
   or inner repeats — would cut a surrounding loop short. *)
let rec contains_decide stmts =
  List.exists
    (fun s ->
      match s.st_desc with
      | Decide _ -> true
      | If (_, then_, else_) ->
          contains_decide then_ || contains_decide else_
      | Repeat (_, body) -> contains_decide body
      | _ -> false)
    stmts

(* Returns the unrolled weight of the statement list. [vars] is the
   lexical scope: bindings made inside a nested block do not escape
   it. *)
let rec check_stmts objs ~vars stmts : int =
  match stmts with
  | [] -> 0
  | st :: rest -> (
      let after_decide () =
        match rest with
        | [] -> ()
        | next :: _ ->
            reject next.st_span "unreachable statement after 'decide'"
      in
      match st.st_desc with
      | Decide e ->
          check_expr ~vars e;
          after_decide ();
          1
      | Let (v, c) ->
          check_call objs ~vars c;
          1 + check_stmts objs ~vars:(v :: vars) rest
      | Call c ->
          check_call objs ~vars c;
          1 + check_stmts objs ~vars rest
      | Write { obj; key = _; value } ->
          check_obj_use objs st.st_span ~verb:"write" obj (function
            | Reg -> true
            | _ -> false);
          check_expr ~vars value;
          1 + check_stmts objs ~vars rest
      | Set { obj; key = _; value } ->
          check_obj_use objs st.st_span ~verb:"set" obj (function
            | Snap -> true
            | _ -> false);
          check_expr ~vars value;
          1 + check_stmts objs ~vars rest
      | Enq { obj; key = _; value } ->
          check_obj_use objs st.st_span ~verb:"enq" obj (function
            | Queue -> true
            | _ -> false);
          check_expr ~vars value;
          1 + check_stmts objs ~vars rest
      | Yield -> 1 + check_stmts objs ~vars rest
      | Repeat (n, body) ->
          if n < 1 then
            rejectf st.st_span "repeat bound must be positive (got %d)" n;
          if n > max_repeat then
            rejectf st.st_span "repeat bound %d exceeds the cap %d" n
              max_repeat;
          let w = check_stmts objs ~vars body in
          if contains_decide body then
            reject st.st_span
              "'decide' inside 'repeat' would cut the loop short: decide \
               after the loop instead";
          (* Saturating: reject before multiplying so nested repeats
             cannot wrap the native int past the cap (255^8 overflows
             63-bit ints to a negative that would pass the final
             comparison). *)
          if w > max_unrolled / n then
            rejectf st.st_span
              "repeat unrolls to more than %d statements (cap %d): shrink \
               the repeat bounds"
              max_unrolled max_unrolled;
          (n * w) + 1 + check_stmts objs ~vars rest
      | If (cond, then_, else_) ->
          check_expr ~vars cond;
          let wt = check_stmts objs ~vars then_ in
          let we = check_stmts objs ~vars else_ in
          1 + wt + we + check_stmts objs ~vars rest)

(* Every path through the statement list ends in a decide. *)
let rec ends_decided stmts =
  match List.rev stmts with
  | [] -> false
  | last :: _ -> (
      match last.st_desc with
      | Decide _ -> true
      | If (_, t, e) -> ends_decided t && ends_decided e
      | _ -> false)

(* ---- best-effort static port discipline ----

   Count, per consensus object and key, the pids that propose on it
   unconditionally (outside any if); more than the declared ports is a
   certain violation, rejected before execution. Conditional accesses
   are left to the environment's dynamic check. *)

let static_cons_accesses ~nprocs sc =
  let tbl : (string * key, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let note obj key pid =
    let k = (obj, key) in
    let set =
      match Hashtbl.find_opt tbl k with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 8 in
          Hashtbl.add tbl k s;
          s
    in
    Hashtbl.replace set pid ()
  in
  let rec scan_stmts pid stmts =
    List.iter
      (fun st ->
        match st.st_desc with
        | Let (_, { c_desc = Propose { obj; key; _ }; _ })
        | Call { c_desc = Propose { obj; key; _ }; _ } -> (
            match find_obj sc.sc_objects obj with
            | Some { o_kind = Cons _; _ } -> note obj key pid
            | _ -> ())
        | Repeat (_, body) -> scan_stmts pid body
        | If _ -> ()  (* conditional: dynamic check only *)
        | _ -> ())
      stmts
  in
  List.iter
    (fun pb ->
      let pids =
        match pb.pb_sel with
        | All -> List.init nprocs Fun.id
        | Range (lo, hi) ->
            List.filter (fun p -> p >= lo && p <= hi)
              (List.init nprocs Fun.id)
      in
      List.iter (fun pid -> scan_stmts pid pb.pb_body) pids)
    sc.sc_procs;
  tbl

let check_port_discipline ~nprocs sc =
  let tbl = static_cons_accesses ~nprocs sc in
  Hashtbl.iter
    (fun (obj, key) set ->
      match find_obj sc.sc_objects obj with
      | Some { o_kind = Cons { ports }; o_span; _ } ->
          let n = Hashtbl.length set in
          if n > ports then
            rejectf o_span
              "port discipline: %d processes propose unconditionally on \
               cons %S key [%s], but it declares only %d port(s)"
              n obj
              (String.concat "," (List.map string_of_int key))
              ports
      | _ -> ())
    tbl

(* ---- process coverage (size-dependent; re-run by Compile) ---- *)

let check_coverage ~nprocs sc =
  let owner = Array.make nprocs None in
  List.iter
    (fun pb ->
      let lo, hi =
        match pb.pb_sel with All -> (0, nprocs - 1) | Range (lo, hi) -> (lo, hi)
      in
      if lo < 0 || hi < lo then
        rejectf pb.pb_span "malformed pid range %d..%d" lo hi;
      if hi >= nprocs then
        rejectf pb.pb_span
          "process block %d..%d is out of range for nprocs %d (pids are \
           0..%d)"
          lo hi nprocs (nprocs - 1);
      for p = lo to hi do
        match owner.(p) with
        | Some _ ->
            rejectf pb.pb_span "pid %d is covered by two process blocks" p
        | None -> owner.(p) <- Some pb
      done)
    sc.sc_procs;
  Array.iteri
    (fun p o ->
      if o = None then
        rejectf sc.sc_span
          "pid %d has no process block (cover it with 'process all' or an \
           explicit range)"
          p)
    owner

(* ---- the scenario ---- *)

let check_sized ~nprocs sc =
  check_coverage ~nprocs sc;
  check_port_discipline ~nprocs sc

let validate_exn sc =
  if sc.sc_nprocs < 1 then
    rejectf sc.sc_span "nprocs must be at least 1 (got %d)" sc.sc_nprocs;
  if sc.sc_min_nprocs < 1 then
    rejectf sc.sc_span "min nprocs must be at least 1 (got %d)"
      sc.sc_min_nprocs;
  if sc.sc_min_nprocs > sc.sc_nprocs then
    rejectf sc.sc_span "min nprocs %d exceeds the default nprocs %d"
      sc.sc_min_nprocs sc.sc_nprocs;
  if sc.sc_x < 1 then rejectf sc.sc_span "x must be at least 1 (got %d)" sc.sc_x;
  if sc.sc_explore_steps < 0 then
    rejectf sc.sc_span "explore_steps must be non-negative (got %d)"
      sc.sc_explore_steps;
  (* objects *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun o ->
      if Hashtbl.mem seen o.o_name then
        rejectf o.o_span "duplicate object name %S" o.o_name;
      Hashtbl.add seen o.o_name ();
      match o.o_kind with
      | Reg | Snap | Sa _ | Ac -> ()
      | Cons { ports } ->
          if ports < 1 then
            rejectf o.o_span "cons %S must declare at least 1 port" o.o_name;
          if ports > sc.sc_x then
            rejectf o.o_span
              "cons %S declares %d ports but the model allows x = %d"
              o.o_name ports sc.sc_x
      | Ts ->
          if sc.sc_x < 2 then
            rejectf o.o_span
              "test&set %S has consensus number 2: it needs x >= 2 (model \
               has x = %d)"
              o.o_name sc.sc_x
      | Queue ->
          if sc.sc_x < 2 then
            rejectf o.o_span
              "queue %S has consensus number 2: it needs x >= 2 (model has \
               x = %d)"
              o.o_name sc.sc_x
      | Xsa { x; _ } ->
          if x < 1 then
            rejectf o.o_span "xsa %S must have arity x >= 1" o.o_name;
          if x > sc.sc_x then
            rejectf o.o_span
              "xsa %S has arity %d but the model allows x = %d" o.o_name x
              sc.sc_x;
          if sc.sc_min_nprocs < x then
            rejectf o.o_span
              "xsa %S with arity %d needs at least %d processes (min \
               nprocs is %d)"
              o.o_name x x sc.sc_min_nprocs)
    sc.sc_objects;
  (* process blocks *)
  if sc.sc_procs = [] then
    reject sc.sc_span "the scenario has no process blocks";
  List.iter
    (fun pb ->
      let w = check_stmts sc.sc_objects ~vars:[] pb.pb_body in
      if w > max_unrolled then
        rejectf pb.pb_span
          "process body unrolls to %d statements (cap %d): shrink the \
           repeat bounds"
          w max_unrolled;
      if not (ends_decided pb.pb_body) then
        reject pb.pb_span
          "a process body must end in 'decide' on every path")
    sc.sc_procs;
  (* properties *)
  if sc.sc_props = [] then
    reject sc.sc_span
      "the scenario declares no property (add at least one 'property')";
  List.iter
    (fun p ->
      match p.p_desc with
      | Agreement { lo; hi } | Validity { lo; hi } | Integrity { lo; hi } ->
          check_size_expr "a property range" lo;
          check_size_expr "a property range" hi
      | K_agreement { k; lo; hi } ->
          if k < 1 then rejectf p.p_span "k_agreement needs k >= 1 (got %d)" k;
          check_size_expr "a property range" lo;
          check_size_expr "a property range" hi
      | Stall_bound { prefix; bound } ->
          if prefix = "" then
            reject p.p_span "stall_bound needs a non-empty family prefix";
          if bound < 1 then
            rejectf p.p_span "stall_bound needs bound >= 1 (got %d)" bound)
    sc.sc_props;
  (* size-dependent checks at the default size *)
  check_sized ~nprocs:sc.sc_nprocs sc

let validate sc : (unit, Ast.error) result =
  match validate_exn sc with () -> Ok () | exception Reject e -> Error e

(* Size-dependent re-validation for resizes, used by {!Compile}. *)
let validate_sized ~nprocs sc : (unit, Ast.error) result =
  match check_sized ~nprocs sc with
  | () -> Ok ()
  | exception Reject e -> Error e
