(* Hand-written lexer for the scenario DSL.

   Produces the full token stream up front (scenario sources are small
   by contract — see {!Compile.max_source_bytes}), each token carrying
   its source span. Lexing never raises: any bad character or
   unterminated literal is returned as a typed {!Ast.error}. *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | DOTDOT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING _ -> "string literal"
  | INT n -> Printf.sprintf "integer %d" n
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | DOTDOT -> "'..'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"

type lexed = { tok : token; span : Ast.span }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let cur_pos st = { Ast.line = st.line; col = st.col }

let advance st =
  (match st.src.[st.pos] with
  | '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | _ -> st.col <- st.col + 1);
  st.pos <- st.pos + 1

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let error ~start st msg =
  Error { Ast.e_span = { s_start = start; s_end = cur_pos st }; e_msg = msg }

(* One token (or EOF). *)
let rec next st : (lexed, Ast.error) result =
  match peek st with
  | None ->
      let p = cur_pos st in
      Ok { tok = EOF; span = { s_start = p; s_end = p } }
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      next st
  | Some '#' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      next st
  | Some c -> (
      let start = cur_pos st in
      let one tok =
        advance st;
        Ok { tok; span = { Ast.s_start = start; s_end = cur_pos st } }
      in
      let two tok =
        advance st;
        advance st;
        Ok { tok; span = { Ast.s_start = start; s_end = cur_pos st } }
      in
      match c with
      | '{' -> one LBRACE
      | '}' -> one RBRACE
      | '[' -> one LBRACK
      | ']' -> one RBRACK
      | '(' -> one LPAREN
      | ')' -> one RPAREN
      | ',' -> one COMMA
      | '+' -> one PLUS
      | '-' -> one MINUS
      | '*' -> one STAR
      | '/' -> one SLASH
      | '%' -> one PERCENT
      | '.' ->
          if peek2 st = Some '.' then two DOTDOT
          else begin
            advance st;
            error ~start st "stray '.': did you mean '..'?"
          end
      | '=' -> if peek2 st = Some '=' then two EQEQ else one ASSIGN
      | '!' ->
          if peek2 st = Some '=' then two NE
          else begin
            advance st;
            error ~start st "stray '!': did you mean '!='?"
          end
      | '<' -> if peek2 st = Some '=' then two LE else one LT
      | '>' -> if peek2 st = Some '=' then two GE else one GT
      | '"' ->
          advance st;
          let buf = Buffer.create 16 in
          let rec str () =
            match peek st with
            | None -> error ~start st "unterminated string literal"
            | Some '\n' ->
                error ~start st "unterminated string literal (newline reached)"
            | Some '"' ->
                advance st;
                Ok
                  {
                    tok = STRING (Buffer.contents buf);
                    span = { Ast.s_start = start; s_end = cur_pos st };
                  }
            | Some '\\' -> (
                advance st;
                match peek st with
                | Some '"' ->
                    Buffer.add_char buf '"';
                    advance st;
                    str ()
                | Some '\\' ->
                    Buffer.add_char buf '\\';
                    advance st;
                    str ()
                | Some 'n' ->
                    Buffer.add_char buf '\n';
                    advance st;
                    str ()
                | Some c ->
                    advance st;
                    error ~start st
                      (Printf.sprintf "unknown string escape '\\%c'" c)
                | None -> error ~start st "unterminated string escape")
            | Some c ->
                Buffer.add_char buf c;
                advance st;
                str ()
          in
          str ()
      | c when is_digit c ->
          let b = Buffer.create 8 in
          while
            match peek st with Some c when is_digit c -> true | _ -> false
          do
            Buffer.add_char b st.src.[st.pos];
            advance st
          done;
          (match peek st with
          | Some c when is_ident_start c ->
              error ~start st
                (Printf.sprintf "number followed by '%c': separate them" c)
          | _ -> (
              match int_of_string_opt (Buffer.contents b) with
              | Some n ->
                  Ok
                    {
                      tok = INT n;
                      span = { Ast.s_start = start; s_end = cur_pos st };
                    }
              | None ->
                  error ~start st
                    (Printf.sprintf "integer literal %s out of range"
                       (Buffer.contents b))))
      | c when is_ident_start c ->
          let b = Buffer.create 16 in
          while
            match peek st with Some c when is_ident_char c -> true | _ -> false
          do
            Buffer.add_char b st.src.[st.pos];
            advance st
          done;
          Ok
            {
              tok = IDENT (Buffer.contents b);
              span = { Ast.s_start = start; s_end = cur_pos st };
            }
      | c ->
          advance st;
          error ~start st (Printf.sprintf "unexpected character %C" c))

(* The whole stream, EOF-terminated. *)
let tokenize src : (lexed array, Ast.error) result =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let acc = ref [] in
  let rec go () =
    match next st with
    | Error e -> Error e
    | Ok t ->
        acc := t :: !acc;
        if t.tok = EOF then Ok (Array.of_list (List.rev !acc)) else go ()
  in
  go ()
