(* Compiler from validated scenario ASTs to runnable artifacts: an
   environment + program array (the same shape {!Experiments.Scenario.t}
   carries), a fresh monitor list, and a pure exhaustive property.

   Soundness notes (DESIGN §15):

   - Compiled programs are {e closed}: every piece of per-process state
     lives either in the shared environment or in the program's own
     continuation — there are no refs captured outside the [Prog.t]
     value. A crash-recovery restart replays the program from the top
     against the surviving shared memory, and the exhaustive explorer's
     re-execution requirement holds, so every compiled scenario is
     explorable.

   - Compiled properties are {e schedule-pure}: they are built only
     from the closed combinator set over decided values ([outcomes]),
     which never inspects [Explore.run.schedule]. The explorer's
     pruning rules are therefore sound for every compiled property.

   - {e Byte identity with builtins}: the declared object name doubles
     as the {!Svm.Op.fam}, the statement interpreter adds no operations
     of its own (continuation plumbing is free), and the monitor /
     property builders below are verbatim mirrors of the kits in
     [lib/experiments/scenario.ml] — so a DSL twin of a registry
     scenario produces the identical op stream, verdict strings, and
     replay artifacts. The differential tests in [test_sdl.ml] and
     [make smoke-sdl] pin this. *)

open Svm
module So = Shared_objects

(* Sources may arrive over the wire ([asmsim serve] accepts them in job
   submissions); this cap bounds what a remote client can make the
   server parse. Checked by {!load} and by the protocol decoder. *)
let max_source_bytes = 65536

type t = {
  c_name : string;
  c_doc : string;
  c_seeded_bug : bool;
  c_nprocs : int;
  c_min_nprocs : int;
  c_x : int;
  c_explore_steps : int;
  c_make : unit -> Env.t * Univ.t Prog.t array;
  c_monitors : unit -> Univ.t Monitor.t list;
  c_property : Univ.t Explore.run -> (unit, string) result;
}

(* ---- int-coded value helpers (mirrors of scenario.ml's kits) ---- *)

let inj = Codec.int.Codec.inj

let prj_int u =
  match Codec.int.Codec.prj u with
  | v -> v
  | exception Codec.Type_error _ -> 0

let pp_int u =
  match Codec.int.Codec.prj u with
  | v -> string_of_int v
  | exception Codec.Type_error _ -> "<univ>"

let int_in ~lo ~hi u =
  match Codec.int.Codec.prj u with
  | v -> v >= lo && v <= hi
  | exception Codec.Type_error _ -> false

let decided_ints run =
  Array.to_list run.Explore.outcomes
  |> List.filter_map (function
       | Exec.Decided u -> Some (Codec.int.Codec.prj u)
       | Exec.Crashed | Exec.Blocked | Exec.Stuck -> None)

(* Verbatim mirror of [Scenario.agreement_property] — same checks, same
   order, same strings, so a DSL twin's verdict output is
   byte-identical to the builtin's. *)
let agreement_property ~lo ~hi run =
  let ds = decided_ints run in
  if List.exists (fun v -> v < lo || v > hi) ds then
    Error "validity: decided value outside the proposed range"
  else
    match ds with
    | [] -> Ok ()
    | d :: rest ->
        if List.for_all (fun v -> v = d) rest then Ok ()
        else Error "agreement: two distinct values decided"

let validity_property ~lo ~hi run =
  let ds = decided_ints run in
  if List.exists (fun v -> v < lo || v > hi) ds then
    Error "validity: decided value outside the proposed range"
  else Ok ()

let k_agreement_property ~k ~lo ~hi run =
  let ds = decided_ints run in
  if List.exists (fun v -> v < lo || v > hi) ds then
    Error "validity: decided value outside the proposed range"
  else
    let distinct = List.sort_uniq compare ds in
    if List.length distinct <= k then Ok ()
    else
      Error
        (Printf.sprintf "k-agreement: %d distinct values decided (k = %d)"
           (List.length distinct) k)

(* ---- expression evaluation ---- *)

(* Total: comparisons yield 0/1, division and modulo by zero yield 0.
   Unbound variables cannot reach here (the validator rejects them). *)
let rec eval ~pid ~nprocs vars e =
  match e.Ast.e_desc with
  | Ast.Int n -> n
  | Ast.Pid -> pid
  | Ast.Nprocs -> nprocs
  | Ast.Var v -> ( match List.assoc_opt v vars with Some n -> n | None -> 0)
  | Ast.Binop (op, a, b) -> (
      let va = eval ~pid ~nprocs vars a and vb = eval ~pid ~nprocs vars b in
      let b2i c = if c then 1 else 0 in
      match op with
      | Ast.Add -> va + vb
      | Ast.Sub -> va - vb
      | Ast.Mul -> va * vb
      | Ast.Div -> if vb = 0 then 0 else va / vb
      | Ast.Mod -> if vb = 0 then 0 else va mod vb
      | Ast.Eq -> b2i (va = vb)
      | Ast.Ne -> b2i (va <> vb)
      | Ast.Lt -> b2i (va < vb)
      | Ast.Le -> b2i (va <= vb)
      | Ast.Gt -> b2i (va > vb)
      | Ast.Ge -> b2i (va >= vb))

(* ---- object handles ---- *)

type handle =
  | H_plain  (** reg / snap / cons / ts / queue: Prog helpers on the fam *)
  | H_sa of So.Safe_agreement.t * bool  (** the bool is [no_cancel] *)
  | H_xsa of So.X_safe_agreement.t
  | H_ac of So.Adopt_commit.t

let make_handles ~nprocs objs =
  List.map
    (fun o ->
      let h =
        match o.Ast.o_kind with
        | Ast.Reg | Ast.Snap | Ast.Cons _ | Ast.Ts | Ast.Queue -> H_plain
        | Ast.Sa { no_cancel } ->
            H_sa (So.Safe_agreement.make ~fam:o.Ast.o_name, no_cancel)
        | Ast.Xsa { x; first_subset_only; static_owners } ->
            H_xsa
              (So.X_safe_agreement.make ~static_owners ~first_subset_only
                 ~fam:o.Ast.o_name ~participants:nprocs ~x ())
        | Ast.Ac -> H_ac (So.Adopt_commit.make ~fam:o.Ast.o_name)
      in
      (o.Ast.o_name, h))
    objs

(* ---- the statement interpreter (CPS over Prog) ---- *)

(* The interpreter adds no Steps of its own: every [Prog.bind] below
   wraps an operation the source explicitly wrote, so the compiled op
   stream is exactly the declared one. *)

let exec_call ~handles ~pid ~nprocs vars c (k : int -> Univ.t Prog.t) :
    Univ.t Prog.t =
  let ev e = eval ~pid ~nprocs vars e in
  let dflt = function Some e -> ev e | None -> 0 in
  let handle obj = List.assoc_opt obj handles in
  match c.Ast.c_desc with
  | Ast.Read { obj; key; default } ->
      Prog.bind (Prog.reg_read Codec.int obj key) (function
        | Some v -> k v
        | None -> k (dflt default))
  | Ast.Deq { obj; key; default } ->
      Prog.bind (Prog.queue_deq Codec.int obj key) (function
        | Some v -> k v
        | None -> k (dflt default))
  | Ast.Scan_max { obj; key; default } ->
      Prog.bind (Prog.snap_scan Codec.int obj key) (fun arr ->
          let best =
            Array.fold_left
              (fun acc o ->
                match (o, acc) with
                | None, _ -> acc
                | Some v, Some b when b >= v -> acc
                | Some v, _ -> Some v)
              None arr
          in
          match best with Some v -> k v | None -> k (dflt default))
  | Ast.Ts_call { obj; key } ->
      Prog.bind (Prog.ts obj key) (fun won -> k (if won then 1 else 0))
  | Ast.Propose { obj; key; value } -> (
      let v = ev value in
      match handle obj with
      | Some (H_sa (sa, no_cancel)) ->
          let p =
            if no_cancel then
              So.Ablations.sa_propose_no_cancel ~fam:obj ~key (inj v)
            else So.Safe_agreement.propose sa ~key (inj v)
          in
          Prog.bind p (fun () -> k 0)
      | Some (H_xsa xsa) ->
          Prog.bind
            (So.X_safe_agreement.propose xsa ~key ~pid (inj v))
            (fun () -> k 0)
      | Some (H_ac ac) ->
          Prog.bind
            (So.Adopt_commit.propose ac ~key ~pid (inj v))
            (fun (_verdict, u) -> k (prj_int u))
      | Some H_plain -> Prog.bind (Prog.cons_propose Codec.int obj key v) k
      | None -> k 0 (* unreachable: the validator rejects unknown objects *))
  | Ast.Decide_obj { obj; key } -> (
      match handle obj with
      | Some (H_sa (sa, _)) ->
          Prog.bind (So.Safe_agreement.decide sa ~key) (fun u ->
              k (prj_int u))
      | Some (H_xsa xsa) ->
          Prog.bind (So.X_safe_agreement.decide xsa ~key ~pid) (fun u ->
              k (prj_int u))
      | _ -> k 0 (* unreachable: the validator pins decide to sa/xsa *))

let rec exec_stmts ~handles ~pid ~nprocs vars stmts
    (k : (string * int) list -> Univ.t Prog.t) : Univ.t Prog.t =
  match stmts with
  | [] -> k vars
  | st :: rest -> (
      let continue vars' = exec_stmts ~handles ~pid ~nprocs vars' rest k in
      match st.Ast.st_desc with
      | Ast.Decide e ->
          (* terminal: the continuation (unreachable code was already
             rejected) is dropped *)
          Prog.return (inj (eval ~pid ~nprocs vars e))
      | Ast.Yield -> Prog.bind Prog.yield (fun () -> continue vars)
      | Ast.Let (v, c) ->
          exec_call ~handles ~pid ~nprocs vars c (fun r ->
              continue ((v, r) :: vars))
      | Ast.Call c ->
          exec_call ~handles ~pid ~nprocs vars c (fun _ -> continue vars)
      | Ast.Write { obj; key; value } ->
          Prog.bind
            (Prog.reg_write Codec.int obj key (eval ~pid ~nprocs vars value))
            (fun () -> continue vars)
      | Ast.Set { obj; key; value } ->
          Prog.bind
            (Prog.snap_set Codec.int obj key (eval ~pid ~nprocs vars value))
            (fun () -> continue vars)
      | Ast.Enq { obj; key; value } ->
          Prog.bind
            (Prog.queue_enq Codec.int obj key (eval ~pid ~nprocs vars value))
            (fun () -> continue vars)
      | Ast.Repeat (n, body) ->
          let rec iter i =
            if i <= 0 then continue vars
            else
              (* bindings made inside the body are lexically scoped to
                 it: each iteration (and the rest) sees the outer vars *)
              exec_stmts ~handles ~pid ~nprocs vars body (fun _ ->
                  iter (i - 1))
          in
          iter n
      | Ast.If (cond, then_, else_) ->
          let branch =
            if eval ~pid ~nprocs vars cond <> 0 then then_ else else_
          in
          exec_stmts ~handles ~pid ~nprocs vars branch (fun _ -> continue vars)
      )

let block_for sc pid =
  List.find_opt
    (fun pb ->
      match pb.Ast.pb_sel with
      | Ast.All -> true
      | Ast.Range (lo, hi) -> pid >= lo && pid <= hi)
    sc.Ast.sc_procs

(* ---- properties ---- *)

(* Property range bounds close over nprocs only (validated), so they
   are resolved once per size here. *)
let resolve_bound ~nprocs e = eval ~pid:0 ~nprocs [] e

let prop_monitors ~nprocs p () =
  match p.Ast.p_desc with
  | Ast.Agreement { lo; hi } ->
      let lo = resolve_bound ~nprocs lo and hi = resolve_bound ~nprocs hi in
      [
        Monitor.agreement ~pp:pp_int ();
        Monitor.decided_value_integrity ~pp:pp_int ~allowed:(int_in ~lo ~hi)
          ();
      ]
  | Ast.K_agreement { k; lo; hi } ->
      let lo = resolve_bound ~nprocs lo and hi = resolve_bound ~nprocs hi in
      [
        Monitor.k_agreement ~pp:pp_int ~k ();
        Monitor.decided_value_integrity ~pp:pp_int ~allowed:(int_in ~lo ~hi)
          ();
      ]
  | Ast.Validity { lo; hi } ->
      let lo = resolve_bound ~nprocs lo and hi = resolve_bound ~nprocs hi in
      [ Monitor.validity ~pp:pp_int ~allowed:(int_in ~lo ~hi) () ]
  | Ast.Integrity { lo; hi } ->
      let lo = resolve_bound ~nprocs lo and hi = resolve_bound ~nprocs hi in
      [
        Monitor.decided_value_integrity ~pp:pp_int ~allowed:(int_in ~lo ~hi)
          ();
      ]
  | Ast.Stall_bound { prefix; bound } ->
      [ Monitor.stall_bound ~fam_prefix:prefix ~bound () ]

let prop_run_check ~nprocs p =
  match p.Ast.p_desc with
  | Ast.Agreement { lo; hi } ->
      let lo = resolve_bound ~nprocs lo and hi = resolve_bound ~nprocs hi in
      agreement_property ~lo ~hi
  | Ast.K_agreement { k; lo; hi } ->
      let lo = resolve_bound ~nprocs lo and hi = resolve_bound ~nprocs hi in
      k_agreement_property ~k ~lo ~hi
  | Ast.Validity { lo; hi } | Ast.Integrity { lo; hi } ->
      (* the explorer injects crashes only, so integrity coincides with
         validity on explored runs *)
      let lo = resolve_bound ~nprocs lo and hi = resolve_bound ~nprocs hi in
      validity_property ~lo ~hi
  | Ast.Stall_bound _ ->
      (* monitor-only: stall accounting needs the event stream, which
         the run record does not carry *)
      fun _ -> Ok ()

let conjoin checks run =
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> ( match c run with Ok () -> go rest | Error _ as e -> e)
  in
  go checks

(* ---- compile ---- *)

let err span fmt = Printf.ksprintf (fun m -> { Ast.e_span = span; e_msg = m }) fmt

let compile ?nprocs (sc : Ast.scenario) : (t, Ast.error) result =
  let sized = match nprocs with Some n -> n | None -> sc.Ast.sc_nprocs in
  if sized < sc.Ast.sc_min_nprocs then
    Error
      (err sc.Ast.sc_span
         "scenario %s needs at least %d processes (valid nprocs: %d and up; \
          got %d)"
         sc.Ast.sc_name sc.Ast.sc_min_nprocs sc.Ast.sc_min_nprocs sized)
  else
    match Validate.validate_sized ~nprocs:sized sc with
    | Error e -> Error e
    | Ok () ->
        let n = sized in
        let make () =
          let env = Env.create ~nprocs:n ~x:sc.Ast.sc_x () in
          let handles = make_handles ~nprocs:n sc.Ast.sc_objects in
          let prog pid =
            match block_for sc pid with
            | Some pb ->
                exec_stmts ~handles ~pid ~nprocs:n [] pb.Ast.pb_body
                  (fun _ ->
                    (* unreachable: the validator requires every path to
                       end in a decide *)
                    Prog.return (inj 0))
            | None -> Prog.return (inj 0) (* unreachable: coverage checked *)
          in
          (env, Array.init n prog)
        in
        let monitors () =
          List.concat_map (fun p -> prop_monitors ~nprocs:n p ()) sc.Ast.sc_props
        in
        let checks = List.map (prop_run_check ~nprocs:n) sc.Ast.sc_props in
        Ok
          {
            c_name = sc.Ast.sc_name;
            c_doc = sc.Ast.sc_doc;
            c_seeded_bug = sc.Ast.sc_seeded_bug;
            c_nprocs = n;
            c_min_nprocs = sc.Ast.sc_min_nprocs;
            c_x = sc.Ast.sc_x;
            c_explore_steps = sc.Ast.sc_explore_steps;
            c_make = make;
            c_monitors = monitors;
            c_property = conjoin checks;
          }

(* Parse + validate (no size needed). The front half of [load], exposed
   for tooling ([asmsim sdl check] / [fmt]). Sources arrive over the
   wire, so a Stack_overflow out of the frontend (the parser depth-caps
   its own recursion, but programmatically built or pathological inputs
   must not crash the server either) is converted to a typed reject. *)
let frontend source : (Ast.scenario, Ast.error) result =
  match
    match Parser.parse source with
    | Error _ as e -> e
    | Ok sc -> (
        match Validate.validate sc with Ok () -> Ok sc | Error e -> Error e)
  with
  | r -> r
  | exception Stack_overflow ->
      Error
        {
          Ast.e_span = Ast.dummy_span;
          e_msg = "the source nests too deeply to process";
        }

(* The whole pipeline on a source string, errors stringified with their
   spans — what the CLI and the server's job decoder consume. *)
let load ?nprocs source : (t, string) result =
  if String.length source > max_source_bytes then
    Error
      (Printf.sprintf "scenario source is %d bytes (cap %d)"
         (String.length source) max_source_bytes)
  else
    match frontend source with
    | Error e -> Error (Ast.error_to_string e)
    | Ok sc -> (
        match compile ?nprocs sc with
        | Ok t -> Ok t
        | Error e -> Error (Ast.error_to_string e)
        | exception Stack_overflow ->
            Error "the source nests too deeply to compile")
