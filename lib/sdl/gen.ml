(* Seeded generator of random well-typed scenarios.

   Pure function of the seed (its own [Random.State], never the global
   generator), so test failures replay from the printed seed. Every
   generated scenario passes {!Validate.validate} by construction: the
   fmt→parse round-trip qcheck in test_sdl.ml drives thousands of
   seeds through [Pretty.to_string] / [Parser.parse] and asserts both
   the round-trip and the validator's acceptance. *)

open Ast

type objs = {
  regs : string list;
  snaps : string list;
  queues : string list;
  tss : string list;
  sas : string list;
  xsas : string list;
  acs : string list;
}

let sp = dummy_span

let mk_e d = { e_desc = d; e_span = sp }

let pick rs l = List.nth l (Random.State.int rs (List.length l))

let opt rs l = if l = [] then None else Some (pick rs l)

(* Expressions over the given variable scope; comparisons only at the
   top of an [if] condition (the grammar allows one, non-nested). *)
let rec gen_arith rs ~vars depth =
  if depth = 0 || Random.State.int rs 3 = 0 then
    match Random.State.int rs (if vars = [] then 3 else 4) with
    | 0 -> mk_e (Int (Random.State.int rs 21 - 10))
    | 1 -> mk_e Pid
    | 2 -> mk_e Nprocs
    | _ -> mk_e (Var (pick rs vars))
  else
    let op = pick rs [ Add; Sub; Mul; Div; Mod ] in
    mk_e (Binop (op, gen_arith rs ~vars (depth - 1), gen_arith rs ~vars (depth - 1)))

let gen_cond rs ~vars =
  if Random.State.bool rs then
    let op = pick rs [ Eq; Ne; Lt; Le; Gt; Ge ] in
    mk_e (Binop (op, gen_arith rs ~vars 1, gen_arith rs ~vars 1))
  else gen_arith rs ~vars 2

let gen_key rs = List.init (Random.State.int rs 3) (fun _ -> Random.State.int rs 4)

let gen_default rs ~vars =
  if Random.State.bool rs then Some (gen_arith rs ~vars 1) else None

let mk_c d = { c_desc = d; c_span = sp }

let mk_s d = { st_desc = d; st_span = sp }

(* One non-terminal statement; [fresh] mints variable names. Returns
   the statement and the variable it binds, if any. *)
let rec gen_stmt rs ~objs ~vars ~fresh depth =
  let candidates =
    List.concat
      [
        (if objs.regs <> [] then [ `Write; `Let_read ] else []);
        (if objs.snaps <> [] then [ `Set; `Let_scan ] else []);
        (if objs.queues <> [] then [ `Enq; `Let_deq ] else []);
        (if objs.tss <> [] then [ `Let_ts ] else []);
        (if objs.sas <> [] then [ `Sa_round ] else []);
        (if objs.xsas <> [] then [ `Xsa_round ] else []);
        (if objs.acs <> [] then [ `Let_ac ] else []);
        [ `Yield ];
        (if depth > 0 then [ `Repeat; `If ] else []);
      ]
  in
  match pick rs candidates with
  | `Write ->
      ( [
          mk_s
            (Write
               {
                 obj = pick rs objs.regs;
                 key = gen_key rs;
                 value = gen_arith rs ~vars 2;
               });
        ],
        None )
  | `Set ->
      ( [
          mk_s
            (Set
               {
                 obj = pick rs objs.snaps;
                 key = gen_key rs;
                 value = gen_arith rs ~vars 2;
               });
        ],
        None )
  | `Enq ->
      ( [
          mk_s
            (Enq
               {
                 obj = pick rs objs.queues;
                 key = gen_key rs;
                 value = gen_arith rs ~vars 2;
               });
        ],
        None )
  | `Let_read ->
      let v = fresh () in
      ( [
          mk_s
            (Let
               ( v,
                 mk_c
                   (Read
                      {
                        obj = pick rs objs.regs;
                        key = gen_key rs;
                        default = gen_default rs ~vars;
                      }) ));
        ],
        Some v )
  | `Let_deq ->
      let v = fresh () in
      ( [
          mk_s
            (Let
               ( v,
                 mk_c
                   (Deq
                      {
                        obj = pick rs objs.queues;
                        key = gen_key rs;
                        default = gen_default rs ~vars;
                      }) ));
        ],
        Some v )
  | `Let_scan ->
      let v = fresh () in
      ( [
          mk_s
            (Let
               ( v,
                 mk_c
                   (Scan_max
                      {
                        obj = pick rs objs.snaps;
                        key = gen_key rs;
                        default = gen_default rs ~vars;
                      }) ));
        ],
        Some v )
  | `Let_ts ->
      let v = fresh () in
      ( [
          mk_s
            (Let (v, mk_c (Ts_call { obj = pick rs objs.tss; key = gen_key rs })));
        ],
        Some v )
  | `Let_ac ->
      let v = fresh () in
      ( [
          mk_s
            (Let
               ( v,
                 mk_c
                   (Propose
                      {
                        obj = pick rs objs.acs;
                        key = gen_key rs;
                        value = gen_arith rs ~vars 1;
                      }) ));
        ],
        Some v )
  | `Sa_round ->
      (* propose then decide, the canonical safe-agreement round; the
         decide is sometimes left unbound (a bare statement whose
         result is dropped) so the round-trip covers that shape too *)
      let obj = pick rs objs.sas in
      let key = gen_key rs in
      let propose =
        mk_s (Call (mk_c (Propose { obj; key; value = gen_arith rs ~vars 1 })))
      in
      if Random.State.bool rs then
        let v = fresh () in
        ([ propose; mk_s (Let (v, mk_c (Decide_obj { obj; key }))) ], Some v)
      else ([ propose; mk_s (Call (mk_c (Decide_obj { obj; key }))) ], None)
  | `Xsa_round ->
      let obj = pick rs objs.xsas in
      let key = gen_key rs in
      let propose =
        mk_s (Call (mk_c (Propose { obj; key; value = gen_arith rs ~vars 1 })))
      in
      if Random.State.bool rs then
        let v = fresh () in
        ([ propose; mk_s (Let (v, mk_c (Decide_obj { obj; key }))) ], Some v)
      else ([ propose; mk_s (Call (mk_c (Decide_obj { obj; key }))) ], None)
  | `Yield -> ([ mk_s Yield ], None)
  | `Repeat ->
      let n = 1 + Random.State.int rs 3 in
      let body, _ = gen_body rs ~objs ~vars ~fresh (depth - 1) in
      ([ mk_s (Repeat (n, body)) ], None)
  | `If ->
      let cond = gen_cond rs ~vars in
      let then_, _ = gen_body rs ~objs ~vars ~fresh (depth - 1) in
      let else_ =
        if Random.State.bool rs then fst (gen_body rs ~objs ~vars ~fresh (depth - 1))
        else []
      in
      ([ mk_s (If (cond, then_, else_)) ], None)

(* A non-deciding statement list, threading let-bound vars. *)
and gen_body rs ~objs ~vars ~fresh depth =
  let len = 1 + Random.State.int rs 3 in
  let rec go i vars acc =
    if i = 0 then (List.concat (List.rev acc), vars)
    else
      let stmts, bound = gen_stmt rs ~objs ~vars ~fresh depth in
      let vars = match bound with Some v -> v :: vars | None -> vars in
      go (i - 1) vars (stmts :: acc)
  in
  go len vars []

let mk_o name kind = { o_name = name; o_kind = kind; o_span = sp }

let scenario ~seed : scenario =
  let rs = Random.State.make [| 0x5d1; seed |] in
  let x = 1 + Random.State.int rs 2 in
  let nprocs = max x (2 + Random.State.int rs 3) in
  (* objects: always a register; the rest by coin flips within the
     model's x *)
  let regs = [ "R" ] in
  let snaps = if Random.State.bool rs then [ "SM" ] else [] in
  let queues = if x >= 2 && Random.State.bool rs then [ "Q" ] else [] in
  let tss = if x >= 2 && Random.State.bool rs then [ "T" ] else [] in
  let sas = if Random.State.bool rs then [ "SA" ] else [] in
  let xsas = if Random.State.bool rs then [ "XSA" ] else [] in
  let acs = if Random.State.bool rs then [ "AC" ] else [] in
  let objs = { regs; snaps; queues; tss; sas; xsas; acs } in
  let sc_objects =
    List.concat
      [
        List.map (fun n -> mk_o n Reg) regs;
        List.map (fun n -> mk_o n Snap) snaps;
        List.map (fun n -> mk_o n Queue) queues;
        List.map (fun n -> mk_o n Ts) tss;
        List.map
          (fun n -> mk_o n (Sa { no_cancel = Random.State.bool rs }))
          sas;
        List.map
          (fun n ->
            mk_o n
              (Xsa
                 {
                   x;
                   first_subset_only = Random.State.bool rs;
                   static_owners = false;
                 }))
          xsas;
        List.map (fun n -> mk_o n Ac) acs;
      ]
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "v%d" !counter
  in
  let body, vars = gen_body rs ~objs ~vars:[] ~fresh 2 in
  let body = body @ [ mk_s (Decide (gen_arith rs ~vars 2)) ] in
  let procs = [ { pb_sel = All; pb_body = body; pb_span = sp } ] in
  let wide = { e_desc = Int (-1_000_000); e_span = sp } in
  let wide_hi =
    mk_e (Binop (Mul, mk_e (Int 1_000_000), mk_e Nprocs))
  in
  let props =
    [ { p_desc = Validity { lo = wide; hi = wide_hi }; p_span = sp } ]
    @
    if Random.State.bool rs then
      [ { p_desc = K_agreement { k = nprocs; lo = wide; hi = wide_hi }; p_span = sp } ]
    else []
  in
  {
    sc_name = Printf.sprintf "gen_%d" seed;
    sc_doc = (if Random.State.bool rs then "generated scenario" else "");
    sc_nprocs = nprocs;
    sc_min_nprocs = max x 2;
    sc_x = x;
    sc_seeded_bug = false;
    sc_explore_steps = 6 + Random.State.int rs 6;
    sc_objects;
    sc_procs = procs;
    sc_props = props;
    sc_span = sp;
  }

let source ~seed = Pretty.to_string (scenario ~seed)
