(* Canonical formatter for scenario ASTs — the output of
   [asmsim sdl fmt].

   The contract (pinned by the qcheck round-trip in test_sdl.ml) is
   [parse (to_string sc)] = [sc] up to spans. To keep that trivially
   true the printer is conservative: every compound operand of a
   binary expression is parenthesized, so printed grouping always
   re-parses to the same tree regardless of precedence. *)

open Ast

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr_str e =
  match e.e_desc with
  | Int n -> string_of_int n
  | Pid -> "pid"
  | Nprocs -> "nprocs"
  | Var v -> v
  | Binop (op, a, b) ->
      Printf.sprintf "%s %s %s" (operand_str a) (binop_str op) (operand_str b)

and operand_str e =
  match e.e_desc with
  | Binop _ -> Printf.sprintf "(%s)" (expr_str e)
  | Int _ | Pid | Nprocs | Var _ -> expr_str e

let key_str key =
  Printf.sprintf "[%s]" (String.concat "," (List.map string_of_int key))

let default_str = function
  | None -> ""
  | Some e -> Printf.sprintf " default %s" (expr_str e)

let call_str c =
  match c.c_desc with
  | Read { obj; key; default } ->
      Printf.sprintf "read %s %s%s" obj (key_str key) (default_str default)
  | Deq { obj; key; default } ->
      Printf.sprintf "deq %s %s%s" obj (key_str key) (default_str default)
  | Scan_max { obj; key; default } ->
      Printf.sprintf "scan_max %s %s%s" obj (key_str key) (default_str default)
  | Propose { obj; key; value } ->
      Printf.sprintf "propose %s %s %s" obj (key_str key) (expr_str value)
  | Decide_obj { obj; key } -> Printf.sprintf "decide %s %s" obj (key_str key)
  | Ts_call { obj; key } -> Printf.sprintf "ts %s %s" obj (key_str key)

let rec add_stmt b indent st =
  let pad = String.make indent ' ' in
  let line s = Buffer.add_string b (pad ^ s ^ "\n") in
  match st.st_desc with
  | Let (v, c) -> line (Printf.sprintf "let %s = %s" v (call_str c))
  | Call c -> line (call_str c)
  | Write { obj; key; value } ->
      line (Printf.sprintf "write %s %s %s" obj (key_str key) (expr_str value))
  | Set { obj; key; value } ->
      line (Printf.sprintf "set %s %s %s" obj (key_str key) (expr_str value))
  | Enq { obj; key; value } ->
      line (Printf.sprintf "enq %s %s %s" obj (key_str key) (expr_str value))
  | Yield -> line "yield"
  | Repeat (n, body) ->
      line (Printf.sprintf "repeat %d {" n);
      List.iter (add_stmt b (indent + 2)) body;
      line "}"
  | If (cond, then_, else_) ->
      line (Printf.sprintf "if %s {" (expr_str cond));
      List.iter (add_stmt b (indent + 2)) then_;
      if else_ = [] then line "}"
      else begin
        line "} else {";
        List.iter (add_stmt b (indent + 2)) else_;
        line "}"
      end
  | Decide e -> line (Printf.sprintf "decide %s" (expr_str e))

let obj_decl_str o =
  match o.o_kind with
  | Reg -> Printf.sprintf "reg %s" o.o_name
  | Snap -> Printf.sprintf "snap %s" o.o_name
  | Cons { ports } -> Printf.sprintf "cons %s ports %d" o.o_name ports
  | Ts -> Printf.sprintf "ts %s" o.o_name
  | Queue -> Printf.sprintf "queue %s" o.o_name
  | Sa { no_cancel } ->
      Printf.sprintf "sa %s%s" o.o_name (if no_cancel then " no_cancel" else "")
  | Xsa { x; first_subset_only; static_owners } ->
      Printf.sprintf "xsa %s x %d%s%s" o.o_name x
        (if first_subset_only then " first_subset_only" else "")
        (if static_owners then " static_owners" else "")
  | Ac -> Printf.sprintf "ac %s" o.o_name

let prop_str p =
  match p.p_desc with
  | Agreement { lo; hi } ->
      Printf.sprintf "agreement in %s .. %s" (expr_str lo) (expr_str hi)
  | K_agreement { k; lo; hi } ->
      Printf.sprintf "k_agreement %d in %s .. %s" k (expr_str lo) (expr_str hi)
  | Validity { lo; hi } ->
      Printf.sprintf "validity in %s .. %s" (expr_str lo) (expr_str hi)
  | Integrity { lo; hi } ->
      Printf.sprintf "integrity in %s .. %s" (expr_str lo) (expr_str hi)
  | Stall_bound { prefix; bound } ->
      Printf.sprintf "stall_bound %s%s" (escape_string prefix)
        (if bound = 1 then "" else Printf.sprintf " bound %d" bound)

let proc_sel_str = function
  | All -> "all"
  | Range (lo, hi) ->
      if lo = hi then string_of_int lo else Printf.sprintf "%d..%d" lo hi

let to_string sc =
  let b = Buffer.create 512 in
  let line s = Buffer.add_string b (s ^ "\n") in
  line (Printf.sprintf "scenario %s {" (escape_string sc.sc_name));
  if sc.sc_doc <> "" then line (Printf.sprintf "  doc %s" (escape_string sc.sc_doc));
  if sc.sc_min_nprocs = sc.sc_nprocs then
    line (Printf.sprintf "  nprocs %d" sc.sc_nprocs)
  else line (Printf.sprintf "  nprocs %d min %d" sc.sc_nprocs sc.sc_min_nprocs);
  line (Printf.sprintf "  x %d" sc.sc_x);
  if sc.sc_seeded_bug then line "  seeded_bug";
  line (Printf.sprintf "  explore_steps %d" sc.sc_explore_steps);
  if sc.sc_objects <> [] then begin
    line "  objects {";
    List.iter (fun o -> line (Printf.sprintf "    %s" (obj_decl_str o))) sc.sc_objects;
    line "  }"
  end;
  List.iter
    (fun pb ->
      line (Printf.sprintf "  process %s {" (proc_sel_str pb.pb_sel));
      List.iter (add_stmt b 4) pb.pb_body;
      line "  }")
    sc.sc_procs;
  List.iter (fun p -> line (Printf.sprintf "  property %s" (prop_str p))) sc.sc_props;
  line "}";
  Buffer.contents b
