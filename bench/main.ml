(* Benchmark harness: one Bechamel test per reproduced artifact (the
   paper's figures are algorithms, so each benchmark times one complete
   execution of the corresponding construction under a fixed seeded
   schedule), plus substrate benches.

   Prints the Section 5.4 class table (the paper's only "table") first,
   then the timing estimates. *)

open Bechamel
open Toolkit
open Svm
open Svm.Prog.Syntax

let adversary seed = Adversary.random ~seed

(* ------------------------------------------------------------------ *)
(* Benchmark bodies: each is one complete run                           *)
(* ------------------------------------------------------------------ *)

let bench_native_snapshot () =
  let env = Env.create ~nprocs:4 ~x:1 () in
  let prog i =
    let rec go r =
      if r = 0 then Prog.return (Codec.int.Codec.inj i)
      else
        let* () = Prog.snap_set Codec.int "m" [] r in
        let* _ = Prog.snap_scan Codec.int "m" [] in
        go (r - 1)
    in
    go 25
  in
  ignore (Exec.run ~env ~adversary:(adversary 1) (Array.init 4 prog))

let bench_afek_snapshot () =
  let env = Env.create ~nprocs:3 ~x:1 () in
  let snap = Shared_objects.Afek_snapshot.make ~fam:"AF" ~nprocs:3 in
  let prog i =
    let rec go r =
      if r = 0 then Prog.return (Codec.int.Codec.inj i)
      else
        let* () =
          Shared_objects.Afek_snapshot.update snap ~pid:i (Codec.int.Codec.inj r)
        in
        let* _ = Shared_objects.Afek_snapshot.scan snap ~pid:i in
        go (r - 1)
    in
    go 8
  in
  ignore (Exec.run ~env ~adversary:(adversary 2) (Array.init 3 prog))

let bench_safe_agreement () =
  let env = Env.create ~nprocs:5 ~x:1 () in
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let prog i =
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key:[] (Codec.int.Codec.inj i)
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  ignore (Exec.run ~env ~adversary:(adversary 3) (Array.init 5 prog))

let bench_ts_from_cons () =
  let env = Env.create ~nprocs:6 ~x:2 () in
  let ts = Shared_objects.Ts_from_cons.make ~fam:"TS" ~participants:6 in
  let prog i =
    Prog.map Codec.bool.Codec.inj
      (Shared_objects.Ts_from_cons.compete ts ~key:[] ~pid:i)
  in
  ignore (Exec.run ~env ~adversary:(adversary 4) (Array.init 6 prog))

let bench_x_compete () =
  let env = Env.create ~nprocs:6 ~x:2 () in
  let xc = Shared_objects.X_compete.make ~fam:"XC" ~participants:6 ~x:2 in
  let prog i =
    Prog.map Codec.bool.Codec.inj
      (Shared_objects.X_compete.compete xc ~key:[] ~pid:i)
  in
  ignore (Exec.run ~env ~adversary:(adversary 5) (Array.init 6 prog))

let bench_x_safe_agreement x () =
  let env = Env.create ~nprocs:6 ~x () in
  let xsa = Shared_objects.X_safe_agreement.make ~fam:"XSA" ~participants:6 ~x () in
  let prog i =
    let* () =
      Shared_objects.X_safe_agreement.propose xsa ~key:[] ~pid:i
        (Codec.int.Codec.inj i)
    in
    Shared_objects.X_safe_agreement.decide xsa ~key:[] ~pid:i
  in
  ignore (Exec.run ~env ~adversary:(adversary 6) (Array.init 6 prog))

let run_alg ?(budget = 5_000_000) ~seed alg () =
  let n = Core.Algorithm.n alg in
  let inputs = List.init n (fun i -> (7 * i) + 3) in
  ignore
    (Core.Run.run_ints ~budget ~alg ~inputs ~adversary:(adversary seed) ())

(* Native task algorithms. *)
let kset_native = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3
let kset_grouped = Tasks.Algorithms.kset_grouped ~n:6 ~t:4 ~x:2 ~k:3
let renaming_native = Tasks.Algorithms.renaming_read_write ~n:6 ~t:2

(* The simulations (built once; each run is independent). *)
let bg_classic = Core.Bg.classic ~source:kset_native
let sim_down = Core.Bg.sim_down ~source:kset_grouped ~t:2

let sim_up_x2 =
  Core.Bg.sim_up ~source:(Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3)
    ~t':5 ~x:2

let sim_up_x3 =
  Core.Bg.sim_up ~source:(Tasks.Algorithms.kset_read_write ~n:6 ~t:1 ~k:2)
    ~t':5 ~x:3

let window_lo =
  Core.Bg.sim_up ~source:(Tasks.Algorithms.kset_read_write ~n:6 ~t:1 ~k:2)
    ~t':2 ~x:2

let window_hi =
  Core.Bg.sim_up ~source:(Tasks.Algorithms.kset_read_write ~n:6 ~t:1 ~k:2)
    ~t':3 ~x:2

let chain_2hop =
  Core.Bg.chain
    ~source:(Tasks.Algorithms.kset_read_write ~n:4 ~t:2 ~k:3)
    ~via:[ Core.Model.read_write ~n:3 ~t:2; Core.Model.make ~n:6 ~t:5 ~x:2 ]

let colored_renaming =
  Core.Bg.colored ~source:renaming_native
    ~target:(Core.Model.make ~n:4 ~t:2 ~x:2)

let bench_universal_counter () =
  let open Universal.Seq_spec in
  let env = Env.create ~nprocs:4 ~x:4 () in
  let obj = Universal.Herlihy.make counter ~fam:"U" in
  let prog pid =
    let session = Universal.Herlihy.session obj ~pid in
    let rec go acc = function
      | [] -> Prog.return (Codec.int.Codec.inj acc)
      | op :: rest ->
          let* r = Universal.Herlihy.invoke session op in
          go (acc + r) rest
    in
    go 0 [ Add 1; Add 1; Add 1 ]
  in
  ignore (Exec.run ~env ~adversary:(adversary 21) (Array.init 4 prog))

let bench_paxos () =
  let env = Env.create ~nprocs:5 ~x:1 () in
  Env.set_oracle env "OM"
    (Shared_objects.Paxos.leader_oracle ~stabilize_after:3 ~leader:2 ~nprocs:5);
  let paxos = Shared_objects.Paxos.make ~fam:"P" ~nprocs:5 in
  ignore
    (Exec.run ~budget:60_000 ~env ~adversary:(adversary 22)
       (Array.init 5 (fun pid ->
            Shared_objects.Paxos.consensus paxos ~oracle_fam:"OM" ~pid
              (Codec.int.Codec.inj pid))))

let mlset_alg =
  Tasks.Set_agreement.algorithm ~n:6 ~t:3 ~m:3 ~l:2
    ~k:(Tasks.Set_agreement.herlihy_rajsbaum_k ~t:3 ~m:3 ~l:2)

let bench_mlset () =
  let env = Env.create ~nprocs:6 ~x:1 ~allow_kset:true () in
  ignore
    (Exec.run ~env ~adversary:(adversary 23)
       (Array.init 6 (fun pid ->
            mlset_alg.Core.Algorithm.code ~pid
              ~input:(Codec.int.Codec.inj (2 * pid)))))

(* The EX family: one explorer workload (safe agreement, 3 procs, one
   crash allowed) timed under each engine configuration, so the
   committed JSON records where the exploration time goes —
   copy-per-branch baseline, undo journal alone, the static-plan
   engine, and the work-stealing engine at 1 and 4 jobs — all at depth
   12.  [explore_speedup_ratio] (EX / EXp4) is what the engine rebuild
   buys over copy-per-branch.  Two extra rows re-time the plan engine
   and the work-stealing engine at depth 15, where the plan engine's
   per-arrival cost (full-history hashing) has grown three levels
   further while the work-stealing engine's stays O(1) per step:
   [par_speedup_ratio] (EXd15 / EXp415) is the number the bench gate
   holds above 2.0. *)

let explore_depth = 12
let explore_depth_deep = 15
let explore_crashes = 1

let explore_make () =
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let env = Env.create ~nprocs:3 ~x:1 () in
  let prog i =
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key:[] (Codec.int.Codec.inj i)
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  (env, Array.init 3 prog)

let explore_ok _ = Ok ()

let bench_explore_copy () =
  ignore
    (Explore.exhaustive_copy ~max_crashes:explore_crashes
       ~max_steps:explore_depth ~make:explore_make ~property:explore_ok ())

let bench_explore_journal () =
  ignore
    (Explore.exhaustive ~max_crashes:explore_crashes ~dedup:false
       ~frontier_depth:explore_depth ~max_steps:explore_depth
       ~make:explore_make ~property:explore_ok ())

let bench_explore_dedup () =
  ignore
    (Explore.exhaustive ~max_crashes:explore_crashes
       ~frontier_depth:explore_depth ~max_steps:explore_depth
       ~make:explore_make ~property:explore_ok ())

let bench_explore_par jobs () =
  ignore
    (Explore.exhaustive ~max_crashes:explore_crashes ~jobs
       ~max_steps:explore_depth ~make:explore_make ~property:explore_ok ())

let bench_explore_plan_deep () =
  ignore
    (Explore.exhaustive_plan ~max_crashes:explore_crashes
       ~frontier_depth:explore_depth_deep ~max_steps:explore_depth_deep
       ~make:explore_make ~property:explore_ok ())

let bench_explore_par_deep jobs () =
  ignore
    (Explore.exhaustive ~max_crashes:explore_crashes ~jobs
       ~max_steps:explore_depth_deep ~make:explore_make ~property:explore_ok
       ())

let ex_name = "EX: explorer baseline, copy-per-branch, sa(3) depth 12"
let exu_name = "EXu: explorer, undo journal, no dedup"
let exd_name = "EXd: plan engine, journal + fingerprint dedup"
let exp1_name = "EXp1: shared visited + work stealing, jobs=1"
let exp4_name = "EXp4: shared visited + work stealing, jobs=4"
let exd15_name = "EXd15: plan engine, sa(3) depth 15"
let exp415_name = "EXp415: shared visited + stealing, jobs=4, depth 15"

let explore_family =
  [
    (ex_name, bench_explore_copy);
    (exu_name, bench_explore_journal);
    (exd_name, bench_explore_dedup);
    (exp1_name, bench_explore_par 1);
    (exp4_name, bench_explore_par 4);
    (exd15_name, bench_explore_plan_deep);
    (exp415_name, bench_explore_par_deep 4);
  ]

(* The sweep-harness overhead pair: the same safe-agreement workload
   run bare, and run the way the fault sweeper runs it — fault-capable
   adversary wrapper, online monitors, trace recording — with no fault
   actually firing, so the difference is pure harness tax. *)

let sweep_overhead_progs () =
  let env = Env.create ~nprocs:5 ~x:1 () in
  let sa = Shared_objects.Safe_agreement.make ~fam:"SA" in
  let prog i =
    let* () =
      Shared_objects.Safe_agreement.propose sa ~key:[] (Codec.int.Codec.inj i)
    in
    Shared_objects.Safe_agreement.decide sa ~key:[]
  in
  (env, Array.init 5 prog)

let bench_overhead_plain () =
  let env, progs = sweep_overhead_progs () in
  ignore (Exec.run ~env ~adversary:(adversary 3) progs)

let bench_overhead_swept () =
  let env, progs = sweep_overhead_progs () in
  let adversary = Adversary.with_faults (adversary 3) [] in
  let monitors = [ Monitor.agreement (); Monitor.crash_bound ~bound:1 () ] in
  ignore (Exec.run ~record_trace:true ~monitors ~env ~adversary progs)

let bench_overhead_metrics () =
  let env, progs = sweep_overhead_progs () in
  let adversary = Adversary.with_faults (adversary 3) [] in
  let monitors = [ Monitor.agreement (); Monitor.crash_bound ~bound:1 () ] in
  ignore
    (Exec.run ~record_trace:true ~monitors ~metrics:(Metrics.create ()) ~env
       ~adversary progs)

let overhead_plain_name = "OV0: safe agreement, bare Exec.run"
let overhead_swept_name = "OV1: same + fault wrapper, monitors, trace"
let overhead_metrics_name = "OV2: same + metrics registry"

(* The DIST family: one fault sweep run in-process (SW0) and through
   the multi-process coordinator at 1, 2 and 4 workers — forked worker
   binaries, length-prefixed frames over socketpairs, in-order merge.
   [dist_overhead_ratio] (DIST1 / SW0) is the per-run tax of the whole
   process machinery at its least favourable point (one worker, so no
   parallelism to hide behind); the bench gate watches the absolute
   row times so a protocol change that bloats framing or handshaking
   shows up in CI. *)

let dist_scenario =
  match Experiments.Scenario.find "safe_agreement" with
  | Ok s -> s
  | Error e -> failwith e

let dist_runs = 400

let bench_sweep_inproc () =
  ignore
    (Experiments.Harness.sweep_scenario ~max_runs:dist_runs dist_scenario)

let dist_config workers =
  {
    (Dist.Coordinator.default_config ~workers
       ~exe:"_build/default/bin/asmsim.exe" ())
    with
    Dist.Coordinator.shard_size = Some 8;
  }

let bench_sweep_dist workers () =
  match
    Experiments.Harness.sweep_scenario_dist ~max_runs:dist_runs
      (dist_config workers) dist_scenario
  with
  | Ok _ -> ()
  | Error e -> failwith e

let sw0_name = "SW0: fault sweep, safe agreement, in-process"
let dist1_name = "DIST1: same sweep, coordinator + 1 worker process"
let dist2_name = "DIST2: same sweep, 2 worker processes"
let dist4_name = "DIST4: same sweep, 4 worker processes"

let dist_family =
  [
    (sw0_name, bench_sweep_inproc);
    (dist1_name, bench_sweep_dist 1);
    (dist2_name, bench_sweep_dist 2);
    (dist4_name, bench_sweep_dist 4);
  ]

(* The NET family: the same sweep submitted to a loopback TCP service
   with one remote worker — handshake, framed submit, shard stream,
   journal, local merge. The server and worker start once and are
   reused across iterations, so NET1 prices the per-job protocol cost
   rather than process startup; [net_overhead_ratio] (NET1 / SW0) is
   the tax of going through the socket instead of the in-process
   sweep. *)

let net_exe = "_build/default/bin/asmsim.exe"
let net_errfile = "_build/bench-net-server.err"
let net_state : int option ref = ref None

let net_read_err () =
  match In_channel.with_open_bin net_errfile In_channel.input_all with
  | s -> s
  | exception Sys_error _ -> ""

let net_scrape_port s =
  let marker = "listening on port " in
  let mn = String.length marker in
  let rec find i =
    if i + mn > String.length s then None
    else if String.sub s i mn = marker then Some (i + mn)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some digits ->
      let j = ref digits in
      while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j > digits then
        Some (int_of_string (String.sub s digits (!j - digits)))
      else None

let net_port () =
  match !net_state with
  | Some port -> port
  | None ->
      let errfd =
        Unix.openfile net_errfile
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o644
      in
      let srv =
        Unix.create_process net_exe
          [|
            net_exe;
            "serve";
            "--listen";
            "127.0.0.1:0";
            "--journal-dir";
            "_build/bench-net-jobs";
          |]
          Unix.stdin Unix.stdout errfd
      in
      Unix.close errfd;
      let rec await tries =
        if tries = 0 then failwith "bench: net server never bound"
        else
          match net_scrape_port (net_read_err ()) with
          | Some port -> port
          | None ->
              Unix.sleepf 0.02;
              await (tries - 1)
      in
      let port = await 500 in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      let wrk =
        Unix.create_process net_exe
          [| net_exe; "work"; "--connect"; Printf.sprintf "127.0.0.1:%d" port |]
          Unix.stdin devnull devnull
      in
      Unix.close devnull;
      at_exit (fun () ->
          List.iter
            (fun pid ->
              (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
              try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
            [ wrk; srv ]);
      net_state := Some port;
      port

let net_client_config =
  lazy
    {
      (Dist.Client.default_config
         ~fingerprint:(Experiments.Harness.registry_fingerprint ())
         ())
      with
      Dist.Client.backoff_base = 0.01;
    }

let bench_sweep_net () =
  let port = net_port () in
  let job =
    Experiments.Harness.sweep_job ~max_runs:dist_runs dist_scenario
  in
  match
    Experiments.Harness.submit_job_net
      (Lazy.force net_client_config)
      job
      (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  with
  | Ok (Dist.Client.Finished _, _) -> ()
  | Ok (Dist.Client.Suspended _, _) -> failwith "bench: net job suspended"
  | Error e -> failwith e

let net1_name = "NET1: same sweep, TCP service + 1 remote worker"
let net_family = [ (net1_name, bench_sweep_net) ]

(* The OBS family: the identical NET1 submit with the client's whole
   observability stack switched on — a Debug-level logger draining into
   a bounded ring, a metrics registry bumped per shard, a span file
   appended per phase — plus one stats round-trip per job, which is
   what an `asmsim top' refresh costs the fleet.
   [obs_overhead_ratio] (OBS1 / NET1) is the telemetry tax on a real
   networked job; the gate keeps the absolute row, and the committed
   ratio documents that telemetry stays under ~10%. *)

let obs_spans =
  lazy
    (let oc = open_out "_build/bench-obs.spans" in
     at_exit (fun () -> close_out_noerr oc);
     Dist.Span.create ~proc:(Printf.sprintf "bench:%d" (Unix.getpid ())) ~oc)

let obs_client_config =
  lazy
    (let ring = Svm.Log.ring 4096 in
     {
       (Lazy.force net_client_config) with
       Dist.Client.log =
         Svm.Log.make ~level:Svm.Log.Debug (Svm.Log.ring_sink ring);
       metrics = Some (Svm.Metrics.create ~wall_clock:false ());
       spans = Some (Lazy.force obs_spans);
     })

let bench_sweep_obs () =
  let port = net_port () in
  let job =
    Experiments.Harness.sweep_job ~max_runs:dist_runs dist_scenario
  in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let cfg = Lazy.force obs_client_config in
  (match Experiments.Harness.submit_job_net cfg job addr with
  | Ok (Dist.Client.Finished _, _) -> ()
  | Ok (Dist.Client.Suspended _, _) -> failwith "bench: obs job suspended"
  | Error e -> failwith e);
  match Dist.Client.stats_query cfg addr with
  | Ok _ -> ()
  | Error e -> failwith ("bench: stats query failed: " ^ e)

let obs1_name = "OBS1: same netted sweep, log + metrics + spans + stats"
let obs_family = [ (obs1_name, bench_sweep_obs) ]

(* The SOAK family: the continuous randomized runner end to end —
   seeded schedule derivation, journaled-arena rollback per run, and a
   per-batch cement into a real corpus store — at 1 and 4 domains. The
   corpus directory is reused across iterations: every record a repeat
   soak produces is already content-addressed there, so the store cost
   stays the steady-state one (dedup hits, no growth), which is the
   cost a long soak actually pays. *)

let soak_scenario =
  match Experiments.Scenario.find "safe_agreement" with
  | Ok s -> s
  | Error e -> failwith e

let soak_schedules = 300

let soak_dir tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "asmsim-bench-soak-%s-%d" tag (Unix.getpid ()))

let soak_config jobs =
  {
    Experiments.Soak.default_config with
    Experiments.Soak.schedules = Some soak_schedules;
    batch = 100;
    jobs;
    gc_tune = false;
  }

let bench_soak ~tag jobs () =
  match
    Experiments.Soak.run (soak_config jobs) ~corpus_dir:(soak_dir tag)
      soak_scenario
  with
  | Ok _ -> ()
  | Error e -> failwith e

let soak1_name = "SOAK1: soak runner, 300 schedules -> corpus, jobs=1"
let soak4_name = "SOAK4: same soak, jobs=4"

let soak_family =
  [
    (soak1_name, bench_soak ~tag:"j1" 1);
    (soak4_name, bench_soak ~tag:"j4" 4);
  ]

(* The SDL family: the same in-process sweep as SW0's scenario, once
   from the builtin registry (SDL0) and once from DSL source text,
   parse + validate + compile *included in every iteration* (SDL1).
   [sdl_compile_overhead_ratio] (SDL1 / SDL0) is the whole-pipeline tax
   of declaring a scenario instead of hand-writing it; the gate holds
   it under 1.05 so the frontend stays negligible next to one sweep. *)

let sdl_twin_source =
  {|scenario "safe_agreement" {
  doc "Figure 1 safe agreement: agreement + validity"
  nprocs 3 min 2
  x 1
  explore_steps 12
  objects { sa SA }
  process all {
    propose SA [] pid
    let v = decide SA []
    decide v
  }
  property agreement in 0 .. nprocs - 1
}|}

let sdl0_name = "SDL0: fault sweep, builtin safe agreement"
let sdl1_name = "SDL1: same sweep from DSL source, compile included"

let bench_sdl_builtin () =
  let s =
    match Experiments.Scenario.find "safe_agreement" with
    | Ok s -> s
    | Error e -> failwith e
  in
  ignore (Experiments.Harness.sweep_scenario ~max_runs:dist_runs s)

let bench_sdl_compiled () =
  let s =
    match Experiments.Scenario.of_source sdl_twin_source with
    | Ok s -> s
    | Error e -> failwith e
  in
  ignore (Experiments.Harness.sweep_scenario ~max_runs:dist_runs s)

let sdl_family =
  [ (sdl0_name, bench_sdl_builtin); (sdl1_name, bench_sdl_compiled) ]

(* Soak a seeded bug twice into one corpus: every counterexample of the
   second pass is a content-address hit. The ratio (findings observed /
   unique findings stored) is what dedup saves a long soak — 2.0 here
   means the second pass stored nothing. *)
let corpus_dedup_ratio () =
  let s =
    match Experiments.Scenario.find "safe_agreement_no_cancel" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let dir = soak_dir "dedup" in
  let cfg =
    {
      Experiments.Soak.default_config with
      Experiments.Soak.seed = 7;
      schedules = Some 120;
      batch = 40;
      gc_tune = false;
    }
  in
  let run () =
    match Experiments.Soak.run cfg ~corpus_dir:dir s with
    | Ok o -> o
    | Error e -> failwith e
  in
  let a = run () in
  let b = run () in
  let unique =
    List.length a.Experiments.Soak.o_new_findings
    + List.length b.Experiments.Soak.o_new_findings
  in
  let observed =
    unique + a.Experiments.Soak.o_dup_findings
    + b.Experiments.Soak.o_dup_findings
  in
  if unique = 0 then None else Some (float_of_int observed /. float_of_int unique)

let tests =
  Test.make_grouped ~name:"mpcn"
    ([
      Test.make ~name:overhead_plain_name (Staged.stage bench_overhead_plain);
      Test.make ~name:overhead_swept_name (Staged.stage bench_overhead_swept);
      Test.make ~name:overhead_metrics_name
        (Staged.stage bench_overhead_metrics);
      Test.make ~name:"S0a: native snapshot, 4 procs x 25 rounds"
        (Staged.stage bench_native_snapshot);
      Test.make ~name:"S0b: Afek snapshot from registers, 3 x 8"
        (Staged.stage bench_afek_snapshot);
      Test.make ~name:"S0c: test&set from 2-cons, 6 procs"
        (Staged.stage bench_ts_from_cons);
      Test.make ~name:"F1: safe agreement, 5 procs"
        (Staged.stage bench_safe_agreement);
      Test.make ~name:"F5: x_compete, 6 procs x=2"
        (Staged.stage bench_x_compete);
      Test.make ~name:"F6a: x_safe_agreement, 6 procs x=2"
        (Staged.stage (bench_x_safe_agreement 2));
      Test.make ~name:"F6b: x_safe_agreement, 6 procs x=3"
        (Staged.stage (bench_x_safe_agreement 3));
      Test.make ~name:"base: native k-set ASM(5,2,1)"
        (Staged.stage (run_alg ~seed:10 kset_native));
      Test.make ~name:"base: grouped k-set ASM(6,4,2)"
        (Staged.stage (run_alg ~seed:11 kset_grouped));
      Test.make ~name:"F8a: native renaming ASM(6,2,1)"
        (Staged.stage (run_alg ~seed:12 renaming_native));
      Test.make ~name:"F2-F3: BG classic -> ASM(3,2,1)"
        (Staged.stage (run_alg ~seed:13 bg_classic));
      Test.make ~name:"F4: Section 3 sim -> ASM(6,2,1)"
        (Staged.stage (run_alg ~seed:14 sim_down));
      Test.make ~name:"S4a: Section 4 sim -> ASM(6,5,2)"
        (Staged.stage (run_alg ~seed:15 sim_up_x2));
      Test.make ~name:"S4b: Section 4 sim -> ASM(6,5,3)"
        (Staged.stage (run_alg ~seed:16 sim_up_x3));
      Test.make ~name:"MPa: window edge t'=t*x -> ASM(6,2,2)"
        (Staged.stage (run_alg ~seed:17 window_lo));
      Test.make ~name:"MPb: window edge t'=t*x+x-1 -> ASM(6,3,2)"
        (Staged.stage (run_alg ~seed:18 window_hi));
      Test.make ~name:"F7: 2-hop chain -> ASM(6,5,2)"
        (Staged.stage (run_alg ~seed:19 chain_2hop));
      Test.make ~name:"F8b: colored renaming -> ASM(4,2,2)"
        (Staged.stage (run_alg ~seed:20 colored_renaming));
      Test.make ~name:"UC: universal fetch&add, 4 procs x 3 ops"
        (Staged.stage bench_universal_counter);
      Test.make ~name:"FD: Paxos consensus with Omega, 5 procs"
        (Staged.stage bench_paxos);
      Test.make ~name:"SA: k-set from (3,2)-set objects, n=6"
        (Staged.stage bench_mlset);
    ]
    @ List.map
        (fun (name, body) -> Test.make ~name (Staged.stage body))
        (explore_family @ dist_family @ net_family @ obs_family
       @ soak_family @ sdl_family))

let estimate_of tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt results name with
      | None -> None
      | Some ols -> (
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Some (name, est)
          | Some [] | None -> None))
    (Test.names tests)

let estimate_table () = estimate_of tests

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* BENCH_svm.json: per-benchmark ns/run plus the sweep-harness overhead
   ratio (swept / plain of the OV pair above) — the number CI watches so
   the fault machinery never silently becomes the bottleneck. *)
let emit_json estimates =
  let find name =
    (* bechamel prefixes the group name ("mpcn/..."). *)
    List.find_map
      (fun (n, est) ->
        if String.length n >= String.length name
           && String.equal
                (String.sub n
                   (String.length n - String.length name)
                   (String.length name))
                name
        then Some est
        else None)
      estimates
  in
  let ratio =
    match (find overhead_plain_name, find overhead_swept_name) with
    | Some p, Some s when p > 0. -> Some (s /. p)
    | _ -> None
  in
  (* OV2 / OV1: the marginal cost of the metrics registry on top of the
     full sweep harness — the "pay-for-what-you-use" number. *)
  let metrics_ratio =
    match (find overhead_swept_name, find overhead_metrics_name) with
    | Some s, Some m when s > 0. -> Some (m /. s)
    | _ -> None
  in
  (* EX / EXp4: what the full engine rebuild buys over the old
     copy-per-branch explorer on the same workload. *)
  let explore_ratio =
    match (find ex_name, find exp4_name) with
    | Some base, Some par when par > 0. -> Some (base /. par)
    | _ -> None
  in
  (* EXd15 / EXp415: the work-stealing engine against the plan engine
     on the deep workload — the gated parallel-exploration payoff. *)
  let par_ratio =
    match (find exd15_name, find exp415_name) with
    | Some plan, Some par when par > 0. -> Some (plan /. par)
    | _ -> None
  in
  (* DIST1 / SW0: the full process-coordination tax — fork, handshake,
     frame, merge — with one worker, so nothing amortizes it. *)
  let dist_ratio =
    match (find sw0_name, find dist1_name) with
    | Some base, Some dist when base > 0. -> Some (dist /. base)
    | _ -> None
  in
  (* NET1 / SW0: the same tax paid over loopback TCP — handshake,
     framed submit, journal, shard stream — with one remote worker. *)
  let net_ratio =
    match (find sw0_name, find net1_name) with
    | Some base, Some net when base > 0. -> Some (net /. base)
    | _ -> None
  in
  (* OBS1 / NET1: what the full telemetry stack (debug logger, metrics
     registry, span file, one stats round-trip) adds to the identical
     networked job — the pay-for-what-you-observe number. *)
  let obs_ratio =
    match (find net1_name, find obs1_name) with
    | Some base, Some obs when base > 0. -> Some (obs /. base)
    | _ -> None
  in
  (* SDL1 / SDL0: parse + validate + compile of the DSL twin amortized
     over one sweep — the declarative frontend's whole-pipeline tax. *)
  let sdl_ratio =
    match (find sdl0_name, find sdl1_name) with
    | Some base, Some sdl when base > 0. -> Some (sdl /. base)
    | _ -> None
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, est) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %.1f}%s\n"
           (json_escape name) est
           (if i = List.length estimates - 1 then "" else ",")))
    estimates;
  Buffer.add_string b "  ],\n";
  (match ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"sweep_overhead_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"sweep_overhead_ratio\": null,\n");
  (match metrics_ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"metrics_overhead_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"metrics_overhead_ratio\": null,\n");
  (match explore_ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"explore_speedup_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"explore_speedup_ratio\": null,\n");
  (match par_ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"par_speedup_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"par_speedup_ratio\": null,\n");
  (match dist_ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"dist_overhead_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"dist_overhead_ratio\": null,\n");
  (match net_ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"net_overhead_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"net_overhead_ratio\": null,\n");
  (match obs_ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"obs_overhead_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"obs_overhead_ratio\": null,\n");
  (match sdl_ratio with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"sdl_compile_overhead_ratio\": %.3f,\n" r)
  | None -> Buffer.add_string b "  \"sdl_compile_overhead_ratio\": null,\n");
  (* Schedules/second of the 4-domain soak row — the throughput a long
     soak sustains, corpus writes included. *)
  let soak_rate =
    match find soak4_name with
    | Some ns when ns > 0. -> Some (float_of_int soak_schedules /. (ns /. 1e9))
    | _ -> None
  in
  (match soak_rate with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"soak_schedules_per_sec\": %.1f,\n" r)
  | None -> Buffer.add_string b "  \"soak_schedules_per_sec\": null,\n");
  let dedup = corpus_dedup_ratio () in
  (match dedup with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf "  \"corpus_dedup_ratio\": %.3f\n" r)
  | None -> Buffer.add_string b "  \"corpus_dedup_ratio\": null\n");
  Buffer.add_string b "}\n";
  let oc = open_out "BENCH_svm.json" in
  output_string oc (Buffer.contents b);
  close_out oc;
  (* One compact line per bench run, appended so ratio drift is
     visible across commits without diffing full BENCH_svm.json. *)
  let hist = Buffer.create 256 in
  let num = function
    | Some r -> Printf.sprintf "%.3f" r
    | None -> "null"
  in
  Buffer.add_string hist
    (Printf.sprintf
       "{\"date\": \"%s\", \"sweep_overhead\": %s, \"explore_speedup\": %s, \
        \"par_speedup\": %s, \"dist_overhead\": %s, \"net_overhead\": %s, \
        \"obs_overhead\": %s}\n"
       (let t = Unix.gmtime (Unix.gettimeofday ()) in
        Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
          (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
          t.Unix.tm_sec)
       (num ratio) (num explore_ratio) (num par_ratio) (num dist_ratio)
       (num net_ratio) (num obs_ratio));
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_history.jsonl"
  in
  output_string oc (Buffer.contents hist);
  close_out oc;
  (match ratio with
  | Some r -> Printf.printf "sweep overhead ratio: %.2fx\n" r
  | None -> ());
  (match metrics_ratio with
  | Some r -> Printf.printf "metrics overhead ratio: %.2fx\n" r
  | None -> ());
  (match explore_ratio with
  | Some r -> Printf.printf "explore speedup ratio: %.2fx\n" r
  | None -> ());
  (match par_ratio with
  | Some r -> Printf.printf "par speedup ratio: %.2fx\n" r
  | None -> ());
  (match dist_ratio with
  | Some r -> Printf.printf "dist overhead ratio: %.2fx\n" r
  | None -> ());
  (match net_ratio with
  | Some r -> Printf.printf "net overhead ratio: %.2fx\n" r
  | None -> ());
  (match obs_ratio with
  | Some r -> Printf.printf "obs overhead ratio: %.2fx\n" r
  | None -> ());
  (match sdl_ratio with
  | Some r -> Printf.printf "sdl compile overhead ratio: %.2fx\n" r
  | None -> ());
  (match soak_rate with
  | Some r -> Printf.printf "soak throughput: %.0f schedules/sec\n" r
  | None -> ());
  (match dedup with
  | Some r -> Printf.printf "corpus dedup ratio: %.2fx\n" r
  | None -> ());
  print_endline "wrote BENCH_svm.json"

(* --gate FILE: the regression gate. Re-times the EX, DIST, NET, OBS and SOAK
   families with the same bechamel estimator that produced the
   committed BENCH_svm.json — cold wall-clock sampling is not
   comparable to the OLS per-run estimate (a parallel-explorer row
   measured after the multi-second baseline rows pays that history's
   major-heap pollution and reads 2-5x its steady-state cost on a
   small machine) — and fails if any row regressed more than 1.5x
   against the committed numbers. Only those rows are gated: they are
   the ones the explorer engine and the process coordinator exist
   for, and the only rows slow enough for timing to be trustworthy. *)

let gate_slack = 1.5

(* Floor on the re-measured EXd15 / EXp415 ratio: the work-stealing
   engine must keep beating the plan engine by at least this much on
   the deep workload, whatever this machine's absolute speed. *)
let par_speedup_bar = 2.0

(* Ceiling on the re-measured SDL1 / SDL0 ratio: compiling a scenario
   from source must stay negligible next to the sweep it feeds. *)
let sdl_compile_bar = 1.05

let committed_ns json name =
  let open Svm.Json in
  match Option.bind (member "benchmarks" json) to_list with
  | None -> None
  | Some rows ->
      List.find_map
        (fun row ->
          match Option.bind (member "name" row) to_str with
          | Some n when String.ends_with ~suffix:name n -> (
              match member "ns_per_run" row with
              | Some (Float f) -> Some f
              | Some (Int i) -> Some (float_of_int i)
              | _ -> None)
          | _ -> None)
        rows

let gate_against file =
  let txt = In_channel.with_open_text file In_channel.input_all in
  let json =
    match Svm.Json.of_string txt with
    | Ok j -> j
    | Error e ->
        Printf.eprintf "bench gate: cannot parse %s: %s\n" file e;
        exit 2
  in
  let families =
    explore_family @ dist_family @ net_family @ obs_family @ soak_family
    @ sdl_family
  in
  let committed =
    List.map
      (fun (name, _) ->
        match committed_ns json name with
        | None ->
            Printf.eprintf "bench gate: no committed row for %s in %s\n" name
              file;
            exit 2
        | Some ns -> (name, ns))
      families
  in
  let measured =
    estimate_of
      (Test.make_grouped ~name:"mpcn"
         (List.map
            (fun (name, body) -> Test.make ~name (Staged.stage body))
            families))
  in
  let failed = ref false in
  List.iter
    (fun (name, committed) ->
      match
        List.find_map
          (fun (n, est) ->
            if String.ends_with ~suffix:name n then Some est else None)
          measured
      with
      | None ->
          Printf.eprintf "bench gate: no measurement for %s\n" name;
          exit 2
      | Some ns ->
          let r = ns /. committed in
          let ok = r <= gate_slack in
          if not ok then failed := true;
          Printf.printf "%-56s %9.1f ms vs %9.1f ms  %.2fx  %s\n" name
            (ns /. 1e6) (committed /. 1e6) r
            (if ok then "ok" else "REGRESSED"))
    committed;
  (* The parallel-exploration payoff is gated as a live ratio of two
     rows from the same measurement pass (so machine speed cancels),
     not against the committed file. *)
  let measured_ns name =
    List.find_map
      (fun (n, est) ->
        if String.ends_with ~suffix:name n then Some est else None)
      measured
  in
  (match (measured_ns exd15_name, measured_ns exp415_name) with
  | Some plan, Some par when par > 0. ->
      let r = plan /. par in
      let ok = r >= par_speedup_bar in
      if not ok then failed := true;
      Printf.printf "%-56s %9.1f ms vs %9.1f ms  %.2fx  %s\n"
        "par_speedup_ratio (EXd15 / EXp415, bar 2.00x)" (plan /. 1e6)
        (par /. 1e6) r
        (if ok then "ok" else "BELOW BAR")
  | _ ->
      failed := true;
      Printf.eprintf "bench gate: cannot compute par_speedup_ratio\n");
  (* The DSL frontend tax is likewise a live same-pass ratio. *)
  (match (measured_ns sdl0_name, measured_ns sdl1_name) with
  | Some base, Some sdl when base > 0. ->
      let r = sdl /. base in
      let ok = r <= sdl_compile_bar in
      if not ok then failed := true;
      Printf.printf "%-56s %9.1f ms vs %9.1f ms  %.2fx  %s\n"
        "sdl_compile_overhead_ratio (SDL1 / SDL0, bar 1.05x)" (sdl /. 1e6)
        (base /. 1e6) r
        (if ok then "ok" else "ABOVE BAR")
  | _ ->
      failed := true;
      Printf.eprintf "bench gate: cannot compute sdl_compile_overhead_ratio\n");
  if !failed then begin
    Printf.eprintf
      "bench gate: EX/DIST/NET/OBS/SOAK/SDL families regressed beyond %.1fx, \
       par_speedup_ratio fell below %.1fx, or sdl_compile_overhead_ratio \
       rose above %.2fx\n"
      gate_slack par_speedup_bar sdl_compile_bar;
    exit 1
  end
  else
    Printf.printf
      "bench gate: EX/DIST/NET/OBS/SOAK/SDL families within %.1fx of %s, \
       par_speedup_ratio >= %.1fx, sdl_compile_overhead_ratio <= %.2fx\n"
      gate_slack file par_speedup_bar sdl_compile_bar

let () =
  let gate = ref None in
  Array.iteri
    (fun i a ->
      if String.equal a "--gate" && i + 1 < Array.length Sys.argv then
        gate := Some Sys.argv.(i + 1))
    Sys.argv;
  match !gate with
  | Some file -> gate_against file
  | None ->
  let json = Array.exists (String.equal "--json") Sys.argv in
  if json then emit_json (estimate_table ())
  else begin
    (* The paper's "table": the Section 5.4 equivalence classes. *)
    print_string (Experiments.Exp_sec54.classes_table ~t':8 ~x_max:9);
    print_newline ();
    let estimates = estimate_table () in
    Printf.printf "%-56s %14s\n" "benchmark (one complete run)" "time/run";
    Printf.printf "%s\n" (String.make 72 '-');
    List.iter
      (fun (name, est) -> Printf.printf "%-56s %11.3f ms\n" name (est /. 1e6))
      estimates
  end
