(* A narrated run of the classic BG simulation (Figures 2-3).

   A 5-process, 2-resilient 3-set agreement algorithm is executed by
   three wait-free simulators q0, q1, q2. We print the beginning of the
   linearized trace so the mechanics are visible: each simulator writes
   its local view into the MEM snapshot and funnels every simulated
   snapshot through a safe agreement instance SA[j, sn].

   Run with:  dune exec examples/bg_walkthrough.exe *)

open Svm

let () =
  let source = Tasks.Algorithms.kset_read_write ~n:5 ~t:2 ~k:3 in
  Format.printf "source:  %s (designed for %s)@." source.Core.Algorithm.name
    (Core.Model.to_string source.Core.Algorithm.model);
  let sim = Core.Bg.classic ~source in
  Format.printf "target:  %s@.@." (Core.Model.to_string sim.Core.Algorithm.model);

  let inputs = [ 50; 60; 70 ] in
  let adversary = Adversary.round_robin () in
  let r =
    Core.Run.run_ints ~record_trace:true ~alg:sim ~inputs ~adversary ()
  in

  Format.printf "the first 30 atomic steps of the simulators:@.";
  (match r.Exec.trace with
  | None -> ()
  | Some t ->
      List.iteri
        (fun i e -> if i < 30 then Format.printf "  %a@." Trace.pp_event e)
        (Trace.events t));
  Format.printf "@.outcomes:@.";
  Array.iteri
    (fun i o ->
      Format.printf "  q%d: %s@." i
        (match o with
        | Exec.Decided v -> Printf.sprintf "decided %d" v
        | Exec.Crashed -> "crashed"
        | Exec.Blocked -> "blocked"
        | Exec.Stuck -> "stuck"))
    r.Exec.outcomes;
  Format.printf
    "@.every simulator decided a value proposed by some simulator, with at \
     most 3 distinct values — t-resilience reduced to wait-freedom, which \
     is the BG theorem.@.";

  (* Now crash one simulator mid-run: the survivors still decide. *)
  let adversary =
    Adversary.with_crashes
      (Adversary.round_robin ())
      [ Adversary.Crash_at_local { pid = 1; step = 25 } ]
  in
  let r = Core.Run.run_ints ~alg:sim ~inputs ~adversary () in
  Format.printf "@.with q1 crashing at its 25th step:@.";
  Array.iteri
    (fun i o ->
      Format.printf "  q%d: %s@." i
        (match o with
        | Exec.Decided v -> Printf.sprintf "decided %d" v
        | Exec.Crashed -> "crashed"
        | Exec.Blocked -> "blocked"
        | Exec.Stuck -> "stuck"))
    r.Exec.outcomes
