(* Quickstart: solve 3-set agreement among 6 processes, 2 of which may
   crash, in the plain read/write model — then move the *same* algorithm
   to a model with 2-ported consensus objects where it survives 5
   crashes. This is the paper's multiplicative power in ~40 lines.

   Run with:  dune exec examples/quickstart.exe *)

open Svm

let pp_result label (r : int Exec.result) =
  Format.printf "%s@." label;
  Array.iteri
    (fun i o ->
      Format.printf "  p%d: %s@." i
        (match o with
        | Exec.Decided v -> Printf.sprintf "decided %d" v
        | Exec.Crashed -> "crashed"
        | Exec.Blocked -> "blocked"
        | Exec.Stuck -> "stuck"))
    r.Exec.outcomes;
  Format.printf "  (%d atomic steps)@.@." r.Exec.total_steps

let () =
  (* A 2-resilient read/write algorithm for 3-set agreement. *)
  let alg = Tasks.Algorithms.kset_read_write ~n:6 ~t:2 ~k:3 in
  let inputs = [ 14; 32; 5; 77; 21; 9 ] in

  (* 1. Run it natively in ASM(6, 2, 1) under a random schedule with two
     crashes — the most its design tolerates. *)
  let adversary =
    Adversary.random_crashes ~seed:42 ~max_crashes:2 ~nprocs:6
      (Adversary.random ~seed:42)
  in
  let r = Core.Run.run_ints ~alg ~inputs ~adversary () in
  pp_result "native, ASM(6,2,1), 2 crashes tolerated:" r;

  (* 2. The target model ASM(6, 5, 2): 2-ported consensus objects buy
     crash tolerance multiplicatively — floor(5/2) = 2 <= t, so the
     Section 4 simulation applies and the same algorithm now survives
     FIVE crashes. *)
  let simulated = Core.Bg.sim_up ~source:alg ~t':5 ~x:2 in
  let adversary =
    Adversary.random_crashes ~within:500 ~seed:7 ~max_crashes:5 ~nprocs:6
      (Adversary.random ~seed:7)
  in
  let r = Core.Run.run_ints ~alg:simulated ~inputs ~adversary () in
  pp_result "simulated, ASM(6,5,2), 5 crashes tolerated:" r;

  (* 3. The model algebra that predicts this. *)
  let m = Core.Model.make ~n:6 ~t:5 ~x:2 in
  Format.printf "%a has power %d; canonical form %a; window for (t=2,x=2): \
                 t' in [%d, %d]@."
    Core.Model.pp m (Core.Model.power m) Core.Model.pp (Core.Model.canonical m)
    (fst (Core.Model.window_bounds ~t:2 ~x:2))
    (snd (Core.Model.window_bounds ~t:2 ~x:2))
