(* asmsim — command-line interface to the reproduction.

   Subcommands:
     classes     print the Section 5.4 equivalence-class table
     canonical   canonical form of one model
     run-task    run a task algorithm natively under a seeded adversary
     simulate    run it under a simulation into another model
     experiment  run one experiment (or all) and print the report
     sweep       systematic fault sweeping under monitors
     explore     exhaustive schedule enumeration with pruning
     replay      re-execute a replay artifact bit-for-bit
     trace       export a replay artifact as a timeline (chrome/text/csv)
     trace-check validate a Chrome trace export (CI)
     trace-merge fuse per-process --spans files into one Chrome trace
     stats       metrics snapshot of a replayed or fresh run
     serve       list or resume journalled distributed jobs
     work        worker-process mode of the distributed runner (internal)
     top         live status view of a running network service

   Exit codes, uniform across every subcommand:
     0  clean — the command ran and found nothing adverse (under
        --expect-violation: the expected finding was found)
     1  finding — a violation, counterexample, failed experiment check,
        or reproduced replay violation (inverted by --expect-violation)
     2  usage or input error — unknown subcommand, flag, scenario, task
        or experiment id; unreadable artifact or journal
     3  internal error — unexpected exception, replay divergence from
        the recorded violation, broken worker protocol, hostile shard,
        or any distributed-run failure *)

open Cmdliner

let model_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ n; t; x ] -> (
        try Ok (Core.Model.make ~n:(int_of_string n) ~t:(int_of_string t)
                  ~x:(int_of_string x))
        with Invalid_argument msg | Failure msg -> Error (`Msg msg))
    | _ -> Error (`Msg "expected n,t,x (e.g. 6,4,2)")
  in
  Arg.conv (parse, fun ppf m -> Core.Model.pp ppf m)

(* ---- classes ---- *)

let classes_cmd =
  let t' =
    Arg.(value & opt int 8 & info [ "t" ] ~docv:"T'" ~doc:"Crash bound t'.")
  in
  let x_max =
    Arg.(value & opt int 9 & info [ "x-max" ] ~docv:"X" ~doc:"Largest x.")
  in
  let run t' x_max = print_string (Experiments.Exp_sec54.classes_table ~t' ~x_max) in
  Cmd.v
    (Cmd.info "classes" ~doc:"Print the Section 5.4 equivalence-class table")
    Term.(const run $ t' $ x_max)

(* ---- canonical ---- *)

let canonical_cmd =
  let model =
    Arg.(
      required
      & pos 0 (some model_conv) None
      & info [] ~docv:"MODEL" ~doc:"Model as n,t,x.")
  in
  let run m =
    Format.printf "%a: power %d, canonical %a, BG canonical %a@."
      Core.Model.pp m (Core.Model.power m) Core.Model.pp
      (Core.Model.canonical m) Core.Model.pp
      (Core.Model.bg_canonical m)
  in
  Cmd.v (Cmd.info "canonical" ~doc:"Canonical form of a model")
    Term.(const run $ model)

(* ---- shared task/algorithm setup ---- *)

let task_arg =
  Arg.(
    value & opt string "kset:3"
    & info [ "task" ] ~docv:"TASK"
        ~doc:"Task: kset:K, consensus, renaming, trivial, approx.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Adversary seed.")

let crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "crashes" ] ~docv:"C" ~doc:"Maximum crashes to inject.")

let parse_task ~n ~t s : (Tasks.Task.t * Core.Algorithm.t, string) result =
  match String.split_on_char ':' s with
  | [ "kset"; k ] ->
      let k = int_of_string k in
      if t < k then
        Ok (Tasks.Task.kset ~k, Tasks.Algorithms.kset_read_write ~n ~t ~k)
      else Error "kset needs t < k for the read/write algorithm"
  | [ "consensus" ] ->
      if t = 0 then
        Ok (Tasks.Task.consensus, Tasks.Algorithms.consensus_zero_resilient ~n)
      else Error "read/write consensus requires t = 0"
  | [ "renaming" ] ->
      Ok
        ( Tasks.Task.renaming ~slots:((2 * n) - 1),
          Tasks.Algorithms.renaming_read_write ~n ~t )
  | [ "trivial" ] -> Ok (Tasks.Task.trivial, Tasks.Algorithms.trivial ~n ~t)
  | [ "approx" ] ->
      Ok
        ( Tasks.Task.approximate ~scale:1024 ~eps:4,
          Tasks.Algorithms.approximate_agreement ~n ~t ~rounds:17 ~scale:1024 )
  | _ -> Error (Printf.sprintf "unknown task %S" s)

let print_run (task : Tasks.Task.t) (run : Experiments.Runner.run) =
  let open Svm in
  Format.printf "inputs:    [%s]@."
    (String.concat "; " (List.map string_of_int run.Experiments.Runner.inputs));
  Array.iteri
    (fun i o ->
      Format.printf "  p%d: %s@." i
        (match o with
        | Exec.Decided v -> Printf.sprintf "decided %d" v
        | Exec.Crashed -> "crashed"
        | Exec.Blocked -> "blocked"
        | Exec.Stuck -> "stuck"))
    run.Experiments.Runner.result.Exec.outcomes;
  Format.printf "steps: %d;  validity: %s@."
    run.Experiments.Runner.result.Exec.total_steps
    (match Experiments.Runner.validate ~task run with
    | Ok () -> "ok"
    | Error m -> "VIOLATED: " ^ m)

(* ---- run-task ---- *)

let run_task_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Processes.") in
  let t = Arg.(value & opt int 2 & info [ "t" ] ~doc:"Crash bound.") in
  let run n t task seed crashes =
    match parse_task ~n ~t task with
    | Error m ->
        prerr_endline m;
        exit 2
    | Ok (task, alg) ->
        let r =
          Experiments.Runner.one_run ~task ~alg ~seed ~max_crashes:crashes ()
        in
        Format.printf "algorithm: %s in %s@." alg.Core.Algorithm.name
          (Core.Model.to_string alg.Core.Algorithm.model);
        print_run task r
  in
  Cmd.v
    (Cmd.info "run-task" ~doc:"Run a task algorithm natively")
    Term.(const run $ n $ t $ task_arg $ seed_arg $ crashes_arg)

(* ---- simulate ---- *)

let simulate_cmd =
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Source processes.") in
  let t = Arg.(value & opt int 2 & info [ "t" ] ~doc:"Source crash bound.") in
  let target =
    Arg.(
      required
      & opt (some model_conv) None
      & info [ "target" ] ~docv:"MODEL" ~doc:"Target model n,t,x.")
  in
  let colored =
    Arg.(value & flag & info [ "colored" ] ~doc:"Use the colored simulation.")
  in
  let run n t task seed crashes target colored =
    match parse_task ~n ~t task with
    | Error m ->
        prerr_endline m;
        exit 2
    | Ok (task, source) ->
        let alg =
          if colored then Core.Bg.colored ~source ~target
          else Core.Bg.to_model ~source ~target
        in
        Format.printf "simulation: %s@." alg.Core.Algorithm.name;
        let r =
          Experiments.Runner.one_run ~budget:5_000_000 ~task ~alg ~seed
            ~max_crashes:crashes ()
        in
        print_run task r
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a task under a BG-style simulation")
    Term.(
      const run $ n $ t $ task_arg $ seed_arg $ crashes_arg $ target $ colored)

(* ---- chain ---- *)

let chain_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Source processes.") in
  let t = Arg.(value & opt int 2 & info [ "t" ] ~doc:"Source crash bound.") in
  let target =
    Arg.(
      required
      & opt (some model_conv) None
      & info [ "target" ] ~docv:"MODEL" ~doc:"Equivalent target model n,t,x.")
  in
  let run n t task seed target =
    match parse_task ~n ~t task with
    | Error m ->
        prerr_endline m;
        exit 2
    | Ok (task, source) ->
        let via = Core.Bg.figure7_chain ~source ~target in
        Format.printf "Figure 7 chain: %s"
          (Core.Model.to_string source.Core.Algorithm.model);
        List.iter (fun m -> Format.printf " -> %s" (Core.Model.to_string m)) via;
        Format.printf "@.(each arrow is one full BG-style simulation; cost multiplies per hop)@.";
        let alg = Core.Bg.chain ~source ~via in
        let r =
          Experiments.Runner.one_run ~budget:50_000_000 ~task ~alg ~seed
            ~max_crashes:0 ()
        in
        print_run task r
  in
  Cmd.v
    (Cmd.info "chain"
       ~doc:"Run a task through the full Figure 7 equivalence chain")
    Term.(const run $ n $ t $ task_arg $ seed_arg $ target)

(* ---- overhead ---- *)

let overhead_cmd =
  let run () = print_string (Experiments.Exp_scale.overhead_table ()) in
  Cmd.v
    (Cmd.info "overhead" ~doc:"Print the simulation step-cost table")
    Term.(const run $ const ())

(* ---- experiment ---- *)

let experiment_cmd =
  let id =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id, or 'all'.")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Emit markdown.")
  in
  let run id markdown =
    let reports =
      if String.equal id "all" then
        List.map (fun (_, _, run) -> run ()) Experiments.Registry.all
      else
        match Experiments.Registry.find id with
        | Some run -> [ run () ]
        | None ->
            Format.eprintf "unknown experiment %s (have: %s)@." id
              (String.concat ", " (Experiments.Registry.ids ()));
            exit 2
    in
    List.iter
      (fun r ->
        if markdown then print_string (Experiments.Report.to_markdown r)
        else Format.printf "%a@." Experiments.Report.pp r)
      reports;
    let failed = List.filter (fun r -> not (Experiments.Report.all_ok r)) reports in
    if not markdown then begin
      Format.printf "-------------------------------------------@.";
      List.iter
        (fun r -> Format.printf "%a@." Experiments.Report.pp_summary_line r)
        reports
    end;
    if failed <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run reproduction experiments")
    Term.(const run $ id $ markdown)

(* ---- sweep ---- *)

let scenario_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "algo" ] ~docv:"SCENARIO"
        ~doc:
          (Printf.sprintf
             "Scenario to run: %s, or any name registered via \
              --scenario-file/--scenario-dir."
             (String.concat ", " (Experiments.Scenario.names ()))))

(* ---- DSL scenario files ---- *)

let scenario_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario-file" ] ~docv:"FILE.sdl"
        ~doc:
          "Load, validate and register the DSL scenario in FILE; when \
           --algo is not given, FILE's scenario is the one run.")

let scenario_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "scenario-dir" ] ~docv:"DIR"
        ~doc:
          "Register every *.sdl file in DIR (non-recursive); pick one by \
           name with --algo.")

let read_sdl_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error m ->
      Format.eprintf "%s@." m;
      exit 2

let register_sdl_file path =
  match Experiments.Scenario.register_source ~path (read_sdl_file path) with
  | Ok s -> s.Experiments.Scenario.name
  | Error m ->
      Format.eprintf "%s:%s@." path m;
      exit 2

let register_sdl_dir dir =
  match Sys.readdir dir with
  | exception Sys_error m ->
      Format.eprintf "%s@." m;
      exit 2
  | entries ->
      let sdl =
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".sdl")
        |> List.sort compare
      in
      if sdl = [] then begin
        Format.eprintf "no .sdl files in %s@." dir;
        exit 2
      end;
      List.iter
        (fun f -> ignore (register_sdl_file (Filename.concat dir f)))
        sdl

(* Register any DSL sources, then settle which scenario name to run:
   an explicit --algo wins, else the --scenario-file's own name. *)
let resolve_scenario ~cmd name file dir =
  Option.iter register_sdl_dir dir;
  let file_name = Option.map register_sdl_file file in
  match (name, file_name) with
  | Some n, _ -> n
  | None, Some n -> n
  | None, None ->
      Format.eprintf
        "%s: no scenario given: pass --algo NAME or --scenario-file \
         FILE.sdl@."
        cmd;
      exit 2

let pp_violation_line (v : Svm.Monitor.violation) =
  Format.printf "violation: %s: %s (step %d, p%d)@." v.Svm.Monitor.monitor
    v.Svm.Monitor.message v.Svm.Monitor.step v.Svm.Monitor.pid

(* ---- distributed-execution options, shared by sweep and explore ---- *)

let dist_arg =
  Arg.(
    value & opt int 0
    & info [ "dist" ] ~docv:"W"
        ~doc:
          "Shard the work across W worker OS processes (0 = in-process). \
           Output is bit-for-bit identical to the in-process run; --jobs is \
           ignored. Completed shards are journalled under --journal-dir so a \
           killed run can be picked up with --resume.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"JOB"
        ~doc:
          "Resume the journalled distributed job JOB, re-running only its \
           unfinished shards (requires --dist; the other parameters must \
           describe the same job).")

let shard_timeout_arg =
  Arg.(
    value & opt float 120.
    & info [ "shard-timeout" ] ~docv:"SEC"
        ~doc:
          "Kill a worker that sits on one shard longer than SEC seconds; \
           the shard is reassigned.")

let shard_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-size" ] ~docv:"CELLS"
        ~doc:
          "Cells per shard (default: derived from the work size and the \
           worker count).")

let chaos_kill_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-kill-shard" ] ~docv:"K"
        ~doc:
          "Fault-injection hook: SIGKILL the worker assigned shard K, once, \
           right after the assignment — the run must still produce identical \
           output.")

let journal_dir_arg =
  Arg.(
    value
    & opt string Dist.Journal.default_dir
    & info [ "journal-dir" ] ~docv:"DIR"
        ~doc:"Where distributed jobs journal their completed shards.")

(* ---- leveled logging, shared by every long-running subcommand ----
   All diagnostics go to stderr so stdout stays byte-diffable against
   in-process runs; the default human rendering of Info records is the
   historical "[sub] message" format the smoke checks grep for. *)

let log_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Diagnostic verbosity on stderr: one of debug, info, warn, \
           error. Levels below LEVEL are dropped at the source.")

let log_json_arg =
  Arg.(
    value & flag
    & info [ "log-json" ]
        ~doc:
          "Emit diagnostics as JSON lines (seq/level/sub/msg, no \
           timestamps) instead of human-readable text.")

let make_log ~json level_str =
  let level =
    match Svm.Log.level_of_string level_str with
    | Some l -> l
    | None ->
        Format.eprintf "unknown log level %S (known: debug, info, warn, \
                        error)@."
          level_str;
        exit 2
  in
  let write s =
    prerr_string s;
    prerr_newline ()
  in
  let sink =
    if json then Svm.Log.json_sink write else Svm.Log.human_sink write
  in
  Svm.Log.make ~level sink

(* ---- wall-clock span recording (cross-process tracing) ---- *)

let spans_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ] ~docv:"FILE"
        ~doc:
          "Append this process's wall-clock spans to FILE as JSON lines; \
           fuse the files of every participating process into one Chrome \
           trace with `asmsim trace-merge'.")

(* Lanes in the merged trace are keyed by process name, so stamp the pid
   in: two workers on one host must not share a lane. *)
let make_spans ~role = function
  | None -> None
  | Some file ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
      at_exit (fun () -> try close_out oc with Sys_error _ -> ());
      Some
        (Dist.Span.create
           ~proc:(Printf.sprintf "%s:%d" role (Unix.getpid ()))
           ~oc)

let dist_config ~log ~dist ~shard_timeout ~shard_size ~chaos ~journal_dir
    ~resume =
  let base = Dist.Coordinator.default_config ~workers:dist () in
  {
    base with
    Dist.Coordinator.shard_timeout;
    shard_size;
    chaos_kill_shard = Option.map (fun k -> (k, 1)) chaos;
    journal_dir = Some journal_dir;
    resume;
    log = Svm.Log.sub log "dist";
  }

(* Coordinator chatter goes to stderr: stdout of a --dist run must stay
   diffable against the in-process run's. *)
let print_dist_stats (st : Dist.Coordinator.stats) =
  Format.eprintf
    "[dist] job %s: %d shard(s) of %d cell(s); %d resumed, %d executed; %d \
     worker(s) spawned, %d killed, %d reassignment(s)@."
    (Option.value st.Dist.Coordinator.job_id ~default:"-")
    st.Dist.Coordinator.shards st.Dist.Coordinator.shard_size
    st.Dist.Coordinator.resumed st.Dist.Coordinator.executed
    st.Dist.Coordinator.spawned st.Dist.Coordinator.killed
    st.Dist.Coordinator.reassigned

let suspend_note id =
  Format.eprintf "[dist] job %s suspended; pick it up with --resume %s@." id id

(* ---- network service plumbing, shared by sweep/explore --connect,
   work --connect and serve --listen; like [dist] chatter it all goes
   to stderr so stdout stays byte-diffable against in-process runs ---- *)

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:
          "Submit the job to a running `asmsim serve --listen' daemon \
           instead of executing locally. Shard payloads stream back and \
           merge locally, so output is bit-for-bit identical to the \
           in-process run. With --resume JOB, continue a job the server \
           suspended while draining.")

let parse_addr_or_die s =
  match Dist.Net.parse_addr s with
  | Ok a -> a
  | Error m ->
      prerr_endline m;
      exit 2

let client_config ?metrics ?spans ~log () =
  {
    (Dist.Client.default_config
       ~fingerprint:(Experiments.Harness.registry_fingerprint ())
       ())
    with
    Dist.Client.log = Svm.Log.sub log "net";
    metrics;
    spans;
  }

let print_net_stats (st : Dist.Client.stats) =
  Format.eprintf
    "[net] job %s: %d shard(s) of %d cell(s); %d resumed, %d executed; %d \
     reconnect(s)@."
    st.Dist.Client.job_id st.Dist.Client.shards st.Dist.Client.shard_size
    st.Dist.Client.resumed st.Dist.Client.executed st.Dist.Client.reconnects

let net_suspend_note id =
  Format.eprintf
    "[net] job %s suspended (server draining); resubmit with --connect \
     ... --resume %s@."
    id id

(* ---- outcome printers, shared by the in-process and --dist paths and
   by serve; each returns whether a finding was printed ---- *)

let print_sweep_outcome ~out (outcome : Svm.Explore.sweep_outcome) =
  (match outcome.Svm.Explore.deadlock with
  | None -> ()
  | Some d ->
      Format.printf
        "deadlock finding: every process halted without deciding under %a@."
        Svm.Explore.pp_fault_schedule d);
  match outcome.Svm.Explore.found with
  | None ->
      Format.printf "no violation in %d runs%s@." outcome.Svm.Explore.runs
        (if outcome.Svm.Explore.exhausted then
           " (run budget hit; coverage partial)"
         else "; fault box covered");
      false
  | Some f ->
      pp_violation_line f.Svm.Explore.violation;
      Format.printf "found by:  %a@.shrunk to: %a  (%d shrink re-runs)@."
        Svm.Explore.pp_fault_schedule f.Svm.Explore.fault
        Svm.Explore.pp_fault_schedule f.Svm.Explore.shrunk
        f.Svm.Explore.shrink_runs;
      let oc = open_out out in
      output_string oc f.Svm.Explore.replay;
      close_out oc;
      Format.printf "replay artifact written to %s@." out;
      true

let print_explore_result (r : Svm.Univ.t Svm.Explore.result) =
  Format.printf
    "explored %d run(s), pruned %d state(s) + %d commuting + %d \
     source-blocked transition(s)%s@."
    r.Svm.Explore.explored r.Svm.Explore.pruned_states
    r.Svm.Explore.pruned_commutes r.Svm.Explore.pruned_source
    (if r.Svm.Explore.exhausted_budget then
       " (run budget hit; coverage partial)"
     else "");
  match r.Svm.Explore.counterexample with
  | None ->
      Format.printf "no counterexample within scope@.";
      false
  | Some (run, msg) ->
      Format.printf "counterexample: %s@.schedule: %s%s@.crashed: [%s]@." msg
        run.Svm.Explore.schedule
        (if run.Svm.Explore.truncated then " (truncated)" else "")
        (String.concat ";" (List.map string_of_int run.Svm.Explore.crashed));
      true

let sweep_cmd =
  let t =
    Arg.(
      value & opt int 1
      & info [ "t" ] ~docv:"T" ~doc:"Sweep fault schedules of up to T crashes.")
  in
  let n =
    Arg.(
      value & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Override the scenario's process count.")
  in
  let window =
    Arg.(
      value & opt int 6
      & info [ "window" ] ~docv:"W"
          ~doc:"Crash-point op-index window per victim.")
  in
  let runs =
    Arg.(
      value & opt int 5_000
      & info [ "runs" ] ~docv:"R" ~doc:"Maximum runs before giving up.")
  in
  let budget =
    Arg.(
      value & opt int 20_000
      & info [ "budget" ] ~docv:"B" ~doc:"Per-run step budget.")
  in
  let out =
    Arg.(
      value & opt string "failure.replay"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the replay artifact of a found violation.")
  in
  let tiers =
    Arg.(
      value & opt string "crash"
      & info [ "tiers" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated fault tiers to sweep: any of crash, omission, \
             recovery, byzantine.")
  in
  let expect_violation =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:
            "Invert the exit status: succeed (0) iff a violation was found \
             — for regression-gating known degradations, e.g. a healthy \
             object under the byzantine tier.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Fan runs out over J domains (capped at the core count); 0 \
             means one per core. Outcomes are identical at any job \
             count.")
  in
  let run name scenario_file scenario_dir nprocs t window runs budget out
      tiers expect_violation jobs dist resume shard_timeout shard_size chaos
      journal_dir connect log_level log_json spans =
    let name = resolve_scenario ~cmd:"sweep" name scenario_file scenario_dir in
    let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
    let log = make_log ~json:log_json log_level in
    let kinds =
      String.split_on_char ',' tiers
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match Svm.Adversary.fault_kind_of_name s with
             | Some k -> k
             | None ->
                 Format.eprintf
                   "unknown fault tier %S (known: crash, omission, recovery, \
                    byzantine)@."
                   s;
                 exit 2)
    in
    match Experiments.Scenario.find ?nprocs name with
    | Error m ->
        prerr_endline m;
        exit 2
    | Ok s ->
        Format.printf
          "sweeping %s (n=%d, x=%d): up to %d fault(s) of {%s}, window %d@."
          s.Experiments.Scenario.name s.Experiments.Scenario.nprocs
          s.Experiments.Scenario.x t
          (String.concat ","
             (List.map Svm.Adversary.fault_kind_name kinds))
          window;
        (* Heartbeat on stderr so long sweeps are never silent. *)
        let on_progress ~runs =
          if runs mod 1_000 = 0 then Format.eprintf "... %d runs swept@." runs
        in
        let outcome =
          if dist > 0 then begin
            let config =
              dist_config ~log ~dist ~shard_timeout ~shard_size ~chaos
                ~journal_dir ~resume
            in
            match
              Experiments.Harness.sweep_scenario_dist ~kinds ~max_faults:t
                ~op_window:window ~max_runs:runs ~budget ~on_progress config s
            with
            | Error m ->
                Format.eprintf "sweep --dist failed: %s@." m;
                exit 3
            | Ok (Dist.Coordinator.Suspended id, stats) ->
                print_dist_stats stats;
                suspend_note id;
                exit 0
            | Ok (Dist.Coordinator.Complete outcome, stats) ->
                print_dist_stats stats;
                outcome
          end
          else
            match connect with
            | Some addrstr -> begin
                let addr = parse_addr_or_die addrstr in
                let job =
                  Experiments.Harness.sweep_job ~kinds ~max_faults:t
                    ~op_window:window ~max_runs:runs ~budget s
                in
                match
                  Experiments.Harness.submit_job_net ?resume
                    (client_config ~log
                       ?spans:(make_spans ~role:"client" spans)
                       ())
                    job addr
                with
                | Error m ->
                    Format.eprintf "sweep --connect failed: %s@." m;
                    exit 3
                | Ok (Dist.Client.Suspended id, stats) ->
                    print_net_stats stats;
                    net_suspend_note id;
                    exit 0
                | Ok (Dist.Client.Finished (Dist.Client.Sweep_outcome o), stats)
                  ->
                    print_net_stats stats;
                    o
                | Ok (Dist.Client.Finished (Dist.Client.Explore_outcome _), _)
                  ->
                    Format.eprintf
                      "sweep --connect: server streamed an explore result@.";
                    exit 3
              end
            | None ->
                Experiments.Harness.sweep_scenario ~kinds ~max_faults:t
                  ~op_window:window ~max_runs:runs ~budget ~jobs ~on_progress s
        in
        let violated = print_sweep_outcome ~out outcome in
        if violated <> expect_violation then exit 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Systematically sweep fault points (crash-stop, omission, \
          crash-recovery, byzantine) under online invariant monitors; on \
          violation, shrink the schedule and write a replay artifact")
    Term.(
      const run $ scenario_arg $ scenario_file_arg $ scenario_dir_arg $ n $ t
      $ window $ runs $ budget $ out $ tiers $ expect_violation $ jobs
      $ dist_arg $ resume_arg $ shard_timeout_arg $ shard_size_arg
      $ chaos_kill_arg $ journal_dir_arg $ connect_arg $ log_level_arg
      $ log_json_arg $ spans_arg)

(* ---- explore ---- *)

let explore_cmd =
  let steps =
    Arg.(
      value & opt (some int) None
      & info [ "steps" ] ~docv:"D"
          ~doc:
            "Depth bound (scheduler choices); defaults to the scenario's \
             own exploration depth.")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~docv:"C" ~doc:"Crash budget per run.")
  in
  let n =
    Arg.(
      value & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Override the scenario's process count.")
  in
  let runs =
    Arg.(
      value & opt int 2_000_000
      & info [ "runs" ] ~docv:"R" ~doc:"Maximum runs before giving up.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Fan subtree tasks out over J domains (capped at the core \
             count); 0 means one per core. Results are identical at any \
             job count.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON snapshot of the explorer's deterministic \
             counters (runs, pruning tallies, visited hits/misses) to \
             FILE — byte-identical at any --jobs value (in-process runs \
             only).")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:
            "Disable state-fingerprint deduplication and sleep-set \
             commutation pruning: enumerate every interleaving.")
  in
  let expect_violation =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:"Invert the exit status: succeed (0) iff a counterexample \
                was found.")
  in
  let run name scenario_file scenario_dir nprocs steps crashes runs jobs
      no_dedup expect_violation metrics_out dist resume shard_timeout
      shard_size chaos journal_dir connect log_level log_json spans =
    let name =
      resolve_scenario ~cmd:"explore" name scenario_file scenario_dir
    in
    let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
    let log = make_log ~json:log_json log_level in
    match Experiments.Scenario.find ?nprocs name with
    | Error m ->
        prerr_endline m;
        exit 2
    | Ok s ->
        let depth =
          match steps with
          | Some d -> d
          | None -> s.Experiments.Scenario.explore_steps
        in
        (* The header deliberately omits the job count: stdout must
           diff clean across --jobs values (the determinism make
           target holds it to that). *)
        Format.printf
          "exploring %s (n=%d, x=%d): depth %d, %d crash(es), dedup %s@."
          s.Experiments.Scenario.name s.Experiments.Scenario.nprocs
          s.Experiments.Scenario.x depth crashes
          (if no_dedup then "off" else "on");
        let on_progress ~runs =
          if runs mod 100_000 = 0 then
            Format.eprintf "... %d runs explored@." runs
        in
        let result =
          if dist > 0 then begin
            if not s.Experiments.Scenario.explorable then begin
              Format.eprintf "scenario %s is not explorable@."
                s.Experiments.Scenario.name;
              exit 2
            end;
            let config =
              dist_config ~log ~dist ~shard_timeout ~shard_size ~chaos
                ~journal_dir ~resume
            in
            match
              Experiments.Harness.explore_scenario_dist ~max_crashes:crashes
                ~max_runs:runs ~max_steps:depth ~dedup:(not no_dedup)
                ~on_progress config s
            with
            | Error m ->
                Format.eprintf "explore --dist failed: %s@." m;
                exit 3
            | Ok (Dist.Coordinator.Suspended id, stats) ->
                print_dist_stats stats;
                suspend_note id;
                exit 0
            | Ok (Dist.Coordinator.Complete r, stats) ->
                print_dist_stats stats;
                Ok r
          end
          else
            match connect with
            | Some addrstr -> begin
                if not s.Experiments.Scenario.explorable then begin
                  Format.eprintf "scenario %s is not explorable@."
                    s.Experiments.Scenario.name;
                  exit 2
                end;
                let addr = parse_addr_or_die addrstr in
                let job =
                  Experiments.Harness.explore_job ~max_crashes:crashes
                    ~max_runs:runs ~max_steps:depth ~dedup:(not no_dedup) s
                in
                match
                  Experiments.Harness.submit_job_net ?resume
                    (client_config ~log
                       ?spans:(make_spans ~role:"client" spans)
                       ())
                    job addr
                with
                | Error m ->
                    Format.eprintf "explore --connect failed: %s@." m;
                    exit 3
                | Ok (Dist.Client.Suspended id, stats) ->
                    print_net_stats stats;
                    net_suspend_note id;
                    exit 0
                | Ok
                    (Dist.Client.Finished (Dist.Client.Explore_outcome r), stats)
                  ->
                    print_net_stats stats;
                    Ok r
                | Ok (Dist.Client.Finished (Dist.Client.Sweep_outcome _), _) ->
                    Format.eprintf
                      "explore --connect: server streamed a sweep result@.";
                    exit 3
              end
            | None ->
                let metrics =
                  Option.map (fun _ -> Svm.Metrics.create ()) metrics_out
                in
                let r =
                  Experiments.Harness.explore_scenario ~max_crashes:crashes
                    ~max_runs:runs ~max_steps:depth ~jobs ?metrics
                    ~dedup:(not no_dedup) ~on_progress s
                in
                (match (r, metrics, metrics_out) with
                | Ok _, Some m, Some file ->
                    let oc = open_out file in
                    output_string oc (Svm.Metrics.snapshot_string ~pretty:true m);
                    close_out oc
                | _ -> ());
                r
        in
        (match result with
        | Error m ->
            prerr_endline m;
            exit 2
        | Ok r ->
            let violated = print_explore_result r in
            if violated <> expect_violation then exit 1)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate schedules (and crash placements) of a \
          scenario up to a depth bound, with state-fingerprint \
          deduplication, commutation pruning and multicore fan-out — \
          in-process domains (--jobs) or worker processes (--dist)")
    Term.(
      const run $ scenario_arg $ scenario_file_arg $ scenario_dir_arg $ n
      $ steps $ crashes $ runs $ jobs $ no_dedup $ expect_violation
      $ metrics_out $ dist_arg $ resume_arg $ shard_timeout_arg
      $ shard_size_arg $ chaos_kill_arg $ journal_dir_arg $ connect_arg
      $ log_level_arg $ log_json_arg $ spans_arg)

(* ---- replay ---- *)

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Replay artifact written by sweep.")
  in
  let budget =
    Arg.(
      value & opt int 20_000
      & info [ "budget" ] ~docv:"B" ~doc:"Step budget for the re-run.")
  in
  let run file budget =
    let contents =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Svm.Trace.parse_replay contents with
    | Error e ->
        Format.eprintf "%s: %a@." file Svm.Trace.pp_parse_error e;
        exit 2
    | Ok (meta, decisions) -> (
        match Experiments.Scenario.of_replay_meta meta with
        | Error m ->
            Format.eprintf "%s: %s@." file m;
            exit 2
        | Ok s ->
            Format.printf "replaying %s against %s (n=%d): %d decisions@." file
              s.Experiments.Scenario.name s.Experiments.Scenario.nprocs
              (List.length decisions);
            (match List.assoc_opt "schedule" meta with
            | Some sched -> Format.printf "recorded fault: %s@." sched
            | None -> ());
            let recorded =
              match
                (List.assoc_opt "monitor" meta, List.assoc_opt "step" meta)
              with
              | Some m, Some st -> Some (m, st)
              | _ -> None
            in
            let result =
              Svm.Explore.replay ~budget ~make:s.Experiments.Scenario.make
                ~monitors:s.Experiments.Scenario.monitors decisions
            in
            (* 0 clean, 1 violation reproduced, 3 diverged from the
               recorded violation (wrong monitor/step, or recorded but
               absent). Distinct from 2 = unreadable artifact above. *)
            match (result, recorded) with
            | Error v, Some (m, st) ->
                pp_violation_line v;
                let exact =
                  String.equal v.Svm.Monitor.monitor m
                  && String.equal (string_of_int v.Svm.Monitor.step) st
                in
                if exact then begin
                  Format.printf "reproduced: same monitor at the same step@.";
                  exit 1
                end
                else begin
                  Format.printf
                    "replay DIVERGED: violation differs from the recorded one \
                     (%s at step %s)@."
                    m st;
                  exit 3
                end
            | Error v, None ->
                pp_violation_line v;
                exit 1
            | Ok _, Some (m, st) ->
                Format.printf
                  "replay DIVERGED: run completed cleanly — recorded violation \
                   (%s at step %s) did NOT reproduce@."
                  m st;
                exit 3
            | Ok r, None ->
                Format.printf "run completed cleanly in %d steps@."
                  r.Svm.Exec.total_steps)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a recorded fault schedule bit-for-bit from a file")
    Term.(const run $ file $ budget)

(* ---- trace / trace-check / stats ---- *)

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_out out s =
  match out with
  | None -> print_string s
  | Some file ->
      let oc = open_out file in
      output_string oc s;
      close_out oc;
      Format.eprintf "written to %s@." file

(* Load a replay artifact and re-execute it, returning the scenario, its
   metadata and the recorded trace of the re-run. Exits 2 on unreadable
   artifacts or unknown scenarios, like [replay]. *)
let replay_for_trace ~budget file =
  let contents = read_file file in
  match Svm.Trace.parse_replay contents with
  | Error e ->
      Format.eprintf "%s: %a@." file Svm.Trace.pp_parse_error e;
      exit 2
  | Ok (meta, decisions) -> (
      match Experiments.Scenario.of_replay_meta meta with
      | Error m ->
          Format.eprintf "%s: %s@." file m;
          exit 2
      | Ok s ->
          let metrics = Svm.Metrics.create () in
          let result =
            Svm.Explore.replay ~budget ~metrics
              ~make:s.Experiments.Scenario.make
              ~monitors:s.Experiments.Scenario.monitors decisions
          in
          let trace =
            match result with
            | Ok r -> r.Svm.Exec.trace
            | Error v -> v.Svm.Monitor.trace
          in
          (s, meta, result, trace, metrics))

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")

let budget_arg default =
  Arg.(
    value & opt int default
    & info [ "budget" ] ~docv:"B" ~doc:"Step budget for the re-run.")

let trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Replay artifact written by sweep.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("text", `Text); ("csv", `Csv) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: chrome, text, csv.")
  in
  let allow_partial =
    Arg.(
      value & flag
      & info [ "allow-partial" ]
          ~doc:
            "Export a Chrome trace even when the recorded event buffer was \
             truncated (the JSON is annotated with the dropped count).")
  in
  let run file format allow_partial budget out =
    let s, meta, result, trace, _ = replay_for_trace ~budget file in
    let trace =
      match trace with
      | Some t -> t
      | None ->
          Format.eprintf "%s: replay recorded no trace@." file;
          exit 2
    in
    let tl =
      Svm.Timeline.of_trace ~nprocs:s.Experiments.Scenario.nprocs trace
    in
    if tl.Svm.Timeline.dropped > 0 then
      Format.eprintf
        "warning: trace truncated — %d earlier events dropped, timeline \
         covers the kept suffix@."
        tl.Svm.Timeline.dropped;
    (match result with
    | Error v ->
        Format.eprintf "note: replay violates %s at step %d (as recorded)@."
          v.Svm.Monitor.monitor v.Svm.Monitor.step
    | Ok _ -> ());
    match format with
    | `Text -> write_out out (Svm.Timeline.to_text tl)
    | `Csv -> write_out out (Svm.Timeline.to_csv tl)
    | `Chrome ->
        if tl.Svm.Timeline.dropped > 0 && not allow_partial then begin
          Format.eprintf
            "refusing --format=chrome on a truncated trace (%d events \
             dropped): the timeline would silently look complete; pass \
             --allow-partial to export anyway@."
            tl.Svm.Timeline.dropped;
          exit 1
        end;
        let extra =
          ("scenario", s.Experiments.Scenario.name)
          :: ("artifact", file)
          :: (match List.assoc_opt "schedule" meta with
             | Some sched -> [ ("schedule", sched) ]
             | None -> [])
        in
        write_out out
          (Svm.Json.to_string ~pretty:true
             (Svm.Timeline.to_chrome ~meta:extra tl)
          ^ "\n")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Re-execute a replay artifact and export its timeline (Chrome \
          trace_event JSON for chrome://tracing or Perfetto, plain text, or \
          CSV), with the happens-before critical path and hottest instances")
    Term.(
      const run $ file $ format $ allow_partial $ budget_arg 20_000 $ out_arg)

let trace_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Chrome trace JSON written by trace.")
  in
  let require_instants =
    Arg.(
      value & flag
      & info [ "require-instants" ]
          ~doc:"Fail unless the trace contains at least one fault instant.")
  in
  let run file require_instants =
    match Svm.Json.of_string (read_file file) with
    | Error e ->
        Format.eprintf "%s: not JSON: %s@." file e;
        exit 2
    | Ok json -> (
        match Svm.Timeline.validate_chrome json with
        | Error e ->
            Format.eprintf "%s: invalid chrome trace: %s@." file e;
            exit 1
        | Ok s ->
            Format.printf
              "%s: %d events; spans per pid: [%s]; %d fault instant(s); %d \
               dropped@."
              file s.Svm.Timeline.events
              (String.concat "; "
                 (List.map
                    (fun (pid, n) -> Printf.sprintf "p%d:%d" pid n)
                    s.Svm.Timeline.spans_per_pid))
              s.Svm.Timeline.instants s.Svm.Timeline.dropped;
            if require_instants && s.Svm.Timeline.instants = 0 then begin
              Format.eprintf "%s: no fault instants recorded@." file;
              exit 1
            end)
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a Chrome trace export: well-formed events, instant count \
          matching the metadata, a span for every live process")
    Term.(const run $ file $ require_instants)

(* ---- trace-merge ---- *)

let trace_merge_cmd =
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Span files written with --spans, one per participating OS \
             process (serve, workers, clients).")
  in
  let run files out =
    let spans, skipped =
      List.fold_left
        (fun (acc, sk) file ->
          match Dist.Span.load_file file with
          | Ok (spans, skipped) -> (acc @ spans, sk + skipped)
          | Error m ->
              Format.eprintf "%s: %s@." file m;
              exit 2)
        ([], 0) files
    in
    if skipped > 0 then
      Format.eprintf
        "[trace] skipped %d unparseable line(s) (torn tails are expected \
         after a crash)@."
        skipped;
    if spans = [] then begin
      Format.eprintf "[trace] no spans found in %d file(s)@."
        (List.length files);
      exit 2
    end;
    let trace = Svm.Timeline.merge_processes spans in
    (match Svm.Json.member "otherData" trace with
    | Some od ->
        let i k =
          Option.value ~default:0
            (Option.bind (Svm.Json.member k od) Svm.Json.to_int)
        in
        Format.eprintf
          "[trace] merged %d span(s) across %d process(es); critical path \
           %d us@."
          (i "spans") (i "nprocs") (i "critical_path")
    | None -> ());
    write_out out (Svm.Json.to_string ~pretty:true trace ^ "\n")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Fuse per-process span files (--spans) into one Chrome trace: one \
          lane per OS process, spans correlated across the wire by job \
          fingerprint and shard index, with the cross-process critical \
          path in the metadata. The output passes `asmsim trace-check'.")
    Term.(const run $ files $ out_arg)

let stats_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Replay artifact to re-run under metrics.")
  in
  let algo =
    Arg.(
      value
      & opt (some string) None
      & info [ "algo" ] ~docv:"SCENARIO"
          ~doc:"Run a registered scenario fresh instead of a replay artifact.")
  in
  let wall =
    Arg.(
      value & flag
      & info [ "wall-clock" ]
          ~doc:
            "Include the non-deterministic wall-clock section (snapshots are \
             then not replay-comparable).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the snapshot as one compact JSON line (machine-readable; \
             byte-stable across replays) instead of pretty-printing.")
  in
  let run file algo scenario_file scenario_dir wall json budget out =
    Option.iter register_sdl_dir scenario_dir;
    let sdl_name = Option.map register_sdl_file scenario_file in
    let algo = match (algo, sdl_name) with Some a, _ -> Some a | None, n -> n in
    let snapshot_of metrics =
      Svm.Metrics.snapshot_string ~pretty:(not json) metrics ^ "\n"
    in
    match (file, algo) with
    | Some file, None ->
        let _, _, result, _, metrics = replay_for_trace ~budget file in
        (match result with
        | Error v ->
            Format.eprintf "note: replay violates %s at step %d@."
              v.Svm.Monitor.monitor v.Svm.Monitor.step
        | Ok _ -> ());
        write_out out (snapshot_of metrics)
    | None, Some name -> (
        match Experiments.Scenario.find name with
        | Error m ->
            prerr_endline m;
            exit 2
        | Ok s ->
            let metrics = Svm.Metrics.create ~wall_clock:wall () in
            let env, progs = s.Experiments.Scenario.make () in
            (match
               Svm.Exec.run ~budget ~metrics
                 ~monitors:(s.Experiments.Scenario.monitors ())
                 ~env
                 ~adversary:(Svm.Adversary.round_robin ())
                 progs
             with
            | (_ : Svm.Univ.t Svm.Exec.result) -> ()
            | exception Svm.Monitor.Violation v ->
                Format.eprintf "note: run violates %s at step %d@."
                  v.Svm.Monitor.monitor v.Svm.Monitor.step);
            write_out out (snapshot_of metrics))
    | Some _, Some _ | None, None ->
        Format.eprintf
          "stats: pass exactly one of FILE, --algo, or --scenario-file@.";
        exit 2
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Metrics snapshot (JSON) of a run: replay an artifact under a \
          registry, or run a registered scenario fresh")
    Term.(
      const run $ file $ algo $ scenario_file_arg $ scenario_dir_arg $ wall
      $ json $ budget_arg 50_000 $ out_arg)

(* ---- scenarios (registry listing) ---- *)

let scenarios_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the listing as one JSON document (machine-readable).")
  in
  let run json scenario_file scenario_dir =
    Option.iter register_sdl_dir scenario_dir;
    Option.iter (fun f -> ignore (register_sdl_file f)) scenario_file;
    let registered = Experiments.Scenario.registered_names () in
    let scenarios =
      (* a registered DSL scenario shadows its builtin twin, exactly as
         [find] resolves names *)
      List.filter
        (fun s -> not (List.mem s.Experiments.Scenario.name registered))
        (Experiments.Scenario.all ())
      @ Experiments.Scenario.registered_scenarios ()
    in
    let scenarios =
      List.sort
        (fun a b ->
          compare a.Experiments.Scenario.name b.Experiments.Scenario.name)
        scenarios
    in
    let source_str s =
      match s.Experiments.Scenario.origin with
      | Experiments.Scenario.Builtin -> "builtin"
      | Experiments.Scenario.Sdl_source { path = Some p; _ } -> p
      | Experiments.Scenario.Sdl_source { path = None; _ } -> "<source>"
    in
    if json then
      let entry s =
        Svm.Json.Obj
          [
            ("name", Svm.Json.String s.Experiments.Scenario.name);
            ("doc", Svm.Json.String s.Experiments.Scenario.doc);
            ("nprocs", Svm.Json.Int s.Experiments.Scenario.nprocs);
            ("x", Svm.Json.Int s.Experiments.Scenario.x);
            ("seeded_bug", Svm.Json.Bool s.Experiments.Scenario.seeded_bug);
            ("explorable", Svm.Json.Bool s.Experiments.Scenario.explorable);
            ("source", Svm.Json.String (source_str s));
          ]
      in
      print_string
        (Svm.Json.to_string ~pretty:true
           (Svm.Json.List (List.map entry scenarios))
        ^ "\n")
    else
      List.iter
        (fun s ->
          Format.printf "%-32s n=%d x=%d%s%s  [%s]@.  %s@."
            s.Experiments.Scenario.name s.Experiments.Scenario.nprocs
            s.Experiments.Scenario.x
            (if s.Experiments.Scenario.seeded_bug then " seeded_bug" else "")
            (if s.Experiments.Scenario.explorable then " explorable" else "")
            (source_str s) s.Experiments.Scenario.doc)
        scenarios
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:
         "List every known scenario (builtins plus any registered DSL \
          files): name, doc, size, model, seeded-bug and explorability \
          flags, and where it came from")
    Term.(const run $ json $ scenario_file_arg $ scenario_dir_arg)

(* ---- sdl (DSL tooling) ---- *)

let sdl_cmd =
  let action =
    Arg.(
      required
      & pos 0
          (some (enum [ ("check", `Check); ("compile", `Compile); ("fmt", `Fmt) ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:"One of check (parse + validate), compile (also build the \
                programs and report the artifact shape), fmt (print the \
                canonical form).")
  in
  let file =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"FILE.sdl" ~doc:"The scenario source file.")
  in
  let nprocs =
    Arg.(
      value & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Compile at N processes (compile only).")
  in
  let run action file nprocs =
    let src = read_sdl_file file in
    let fail_typed e =
      Format.eprintf "%s:%s@." file (Sdl.Ast.error_to_string e);
      exit 2
    in
    match action with
    | `Fmt -> (
        (* fmt is parse-only on purpose: a scenario that is structurally
           valid but rejected by the validator can still be formatted
           while being fixed *)
        match Sdl.Parser.parse src with
        | Error e -> fail_typed e
        | Ok sc -> print_string (Sdl.Pretty.to_string sc))
    | `Check -> (
        match Sdl.Compile.frontend src with
        | Error e -> fail_typed e
        | Ok sc ->
            Format.printf "ok: %s (nprocs=%d min=%d, x=%d, %d object(s), %d \
                           process block(s), %d propert%s)@."
              sc.Sdl.Ast.sc_name sc.Sdl.Ast.sc_nprocs sc.Sdl.Ast.sc_min_nprocs
              sc.Sdl.Ast.sc_x
              (List.length sc.Sdl.Ast.sc_objects)
              (List.length sc.Sdl.Ast.sc_procs)
              (List.length sc.Sdl.Ast.sc_props)
              (if List.length sc.Sdl.Ast.sc_props = 1 then "y" else "ies"))
    | `Compile -> (
        match Experiments.Scenario.of_source ?nprocs ~path:file src with
        | Error m ->
            Format.eprintf "%s:%s@." file m;
            exit 2
        | Ok s ->
            let env, progs = s.Experiments.Scenario.make () in
            let monitors = s.Experiments.Scenario.monitors () in
            Format.printf
              "compiled %s: nprocs=%d x=%d, %d program(s), %d monitor(s), \
               explore_steps=%d%s@."
              s.Experiments.Scenario.name s.Experiments.Scenario.nprocs
              s.Experiments.Scenario.x (Array.length progs)
              (List.length monitors) s.Experiments.Scenario.explore_steps
              (if s.Experiments.Scenario.seeded_bug then " (seeded bug)"
               else "");
            ignore (env : Svm.Env.t))
  in
  Cmd.v
    (Cmd.info "sdl"
       ~doc:
         "Scenario-DSL tooling: check FILE (parse + validate, spanned \
          errors, exit 2 on rejection), compile FILE (also build the \
          environment and programs), fmt FILE (canonical form to stdout)")
    Term.(const run $ action $ file $ nprocs)

(* ---- work (internal) / serve ---- *)

let work_cmd =
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Pull shards from an `asmsim serve --listen' daemon over TCP \
             instead of speaking frames on stdin/stdout. Reconnects with \
             jittered exponential backoff when the link drops; exits 0 on \
             a server-initiated shutdown.")
  in
  let chaos_net =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos-net" ] ~docv:"MODE"
          ~doc:
            "Fault-injection harness for --connect: sabotage the write \
             path every few frames. MODE is one of drop, delay, truncate, \
             garbage — results must stay identical to a clean run.")
  in
  let chaos_every =
    Arg.(
      value & opt int 7
      & info [ "chaos-every" ] ~docv:"N"
          ~doc:"Fire the --chaos-net fault on every Nth frame written.")
  in
  let retries =
    Arg.(
      value & opt int 8
      & info [ "retries" ] ~docv:"R"
          ~doc:
            "Consecutive failed connection attempts before giving up \
             (--connect).")
  in
  let run connect chaos_net chaos_every retries log_level log_json spans =
    match connect with
    | None ->
        exit
          (Dist.Worker.serve ~lookup:Experiments.Harness.dist_instance
             Unix.stdin Unix.stdout)
    | Some addrstr ->
        let log = make_log ~json:log_json log_level in
        let addr = parse_addr_or_die addrstr in
        let chaos =
          match chaos_net with
          | None -> None
          | Some name -> (
              match Dist.Net.chaos_mode_of_string name with
              | Ok mode -> Some (Dist.Net.chaos ~every:chaos_every mode)
              | Error m ->
                  prerr_endline m;
                  exit 2)
        in
        (* Every networked worker keeps a registry: its snapshot rides
           each heartbeat pong, which is what feeds `asmsim top'. *)
        let metrics = Svm.Metrics.create () in
        let cfg =
          {
            (client_config ~metrics ~log
               ?spans:(make_spans ~role:"worker" spans)
               ())
            with
            Dist.Client.chaos;
            max_failures = retries;
          }
        in
        exit
          (Dist.Client.worker_loop cfg
             ~lookup:Experiments.Harness.dist_instance addr)
  in
  Cmd.v
    (Cmd.info "work"
       ~doc:
         "Worker-process mode of the distributed runner: speak the \
          length-prefixed frame protocol on stdin/stdout (internal, \
          spawned by --dist), or pull shards from a network service with \
          --connect.")
    Term.(
      const run $ connect $ chaos_net $ chaos_every $ retries $ log_level_arg
      $ log_json_arg $ spans_arg)

let serve_cmd =
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List journalled job ids and exit.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"JOB" ~doc:"Journalled job id to resume.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"W" ~doc:"Worker processes to run under.")
  in
  let out =
    Arg.(
      value & opt string "failure.replay"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the replay artifact of a found violation.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Run as a long-lived TCP verification service: accept job \
             submissions from `sweep/explore --connect' clients and deal \
             their shards to `work --connect' workers. Bind PORT 0 to let \
             the kernel pick (the bound port is printed to stderr). \
             SIGTERM drains gracefully: stop accepting, checkpoint \
             in-flight work, exit 0.")
  in
  let fsync =
    Arg.(
      value & flag
      & info [ "fsync" ]
          ~doc:
            "fsync job journals on every checkpoint (--listen): shards \
             survive a machine crash, not just a process crash.")
  in
  let heartbeat =
    Arg.(
      value & opt float 20.
      & info [ "heartbeat-timeout" ] ~docv:"SEC"
          ~doc:
            "Declare a silent network peer dead after SEC seconds \
             (--listen); a ping is sent at SEC/2.")
  in
  let max_retries =
    Arg.(
      value & opt int 10
      & info [ "max-retries" ] ~docv:"K"
          ~doc:
            "Re-deal a lost shard at most K times before declaring it \
             hostile and failing the job (--listen).")
  in
  let rate_limit =
    Arg.(
      value & opt int (64 * 1024 * 1024)
      & info [ "rate-limit" ] ~docv:"BYTES"
          ~doc:
            "Cut a peer that sends more than BYTES per second (--listen); \
             a slow-loris defense on top of the frame-size cap and the \
             incomplete-frame deadline.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSON snapshot of the service's counters (connections, \
             handshake rejects, shard retries, queue depth) to FILE after \
             the drain (--listen).")
  in
  let run list_flag resume workers shard_timeout journal_dir out listen fsync
      heartbeat max_retries rate_limit metrics_out shard_size log_level
      log_json spans =
    if list_flag then
      List.iter print_endline (Dist.Journal.list_ids ~dir:journal_dir ())
    else
      let log = make_log ~json:log_json log_level in
      match listen with
      | Some addrstr -> (
          let addr = parse_addr_or_die addrstr in
          let metrics = Svm.Metrics.create ~wall_clock:false () in
          let net_log = Svm.Log.sub log "net" in
          let cfg =
            {
              (Dist.Queue.default_config
                 ~fingerprint:(Experiments.Harness.registry_fingerprint ())
                 ())
              with
              Dist.Queue.shard_size;
              shard_timeout;
              heartbeat_timeout = heartbeat;
              max_retries;
              rate_limit;
              journal_dir;
              fsync;
              log = net_log;
              metrics = Some metrics;
              spans = make_spans ~role:"serve" spans;
            }
          in
          match
            Dist.Queue.serve
              ~on_listen:(fun port ->
                Svm.Log.infof net_log "listening on port %d" port)
              cfg ~lookup:Experiments.Harness.dist_instance addr
          with
          | Ok () -> (
              Svm.Log.infof net_log "drained; journals are resumable";
              match metrics_out with
              | None -> ()
              | Some file ->
                  let oc = open_out file in
                  output_string oc
                    (Svm.Metrics.snapshot_string ~pretty:true metrics);
                  output_char oc '\n';
                  close_out oc)
          | Error m ->
              Format.eprintf "serve: %s@." m;
              exit 3)
      | None -> (
          match resume with
          | None ->
              Format.eprintf "serve: pass --listen ADDR, --resume JOB or \
                              --list@.";
              exit 2
          | Some id -> (
              match Dist.Journal.load ~dir:journal_dir id with
              | Error m ->
                  prerr_endline m;
                  exit 2
              | Ok l -> (
                  let config =
                    {
                      (Dist.Coordinator.default_config ~workers ()) with
                      Dist.Coordinator.shard_timeout;
                      journal_dir = Some journal_dir;
                      resume = Some id;
                      log = Svm.Log.sub log "dist";
                    }
                  in
                  (* The job itself comes from the journal — serve needs no
                     re-statement of the sweep/explore parameters. *)
                  match
                    Experiments.Harness.run_job_dist config
                      l.Dist.Journal.l_job
                  with
                  | Error m ->
                      Format.eprintf "serve: %s@." m;
                      exit 3
                  | Ok (`Sweep (Dist.Coordinator.Complete outcome, stats)) ->
                      print_dist_stats stats;
                      if print_sweep_outcome ~out outcome then exit 1
                  | Ok (`Explore (Dist.Coordinator.Complete r, stats)) ->
                      print_dist_stats stats;
                      if print_explore_result r then exit 1
                  | Ok
                      ( `Sweep (Dist.Coordinator.Suspended sid, stats)
                      | `Explore (Dist.Coordinator.Suspended sid, stats) ) ->
                      print_dist_stats stats;
                      suspend_note sid)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the network verification service (--listen), or manage \
          journalled distributed jobs: list them, or resume one (finished \
          shards are restored from the journal, only the rest re-run)")
    Term.(
      const run $ list_flag $ resume $ workers $ shard_timeout_arg
      $ journal_dir_arg $ out $ listen $ fsync $ heartbeat $ max_retries
      $ rate_limit $ metrics_out $ shard_size_arg $ log_level_arg
      $ log_json_arg $ spans_arg)

(* ---- top ---- *)

let top_cmd =
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"The `asmsim serve --listen' daemon to watch.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Print one snapshot and exit (for scripts and CI) instead of \
             refreshing.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the raw stats document (health + merged metrics) as one \
             compact JSON line; implies --once.")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SEC"
          ~doc:"Seconds between refreshes (without --once).")
  in
  let run connect once json interval log_level log_json =
    let log = make_log ~json:log_json log_level in
    let addr = parse_addr_or_die connect in
    let cfg = client_config ~log () in
    let j = Svm.Json.member in
    let ji doc k =
      Option.value ~default:0 (Option.bind (j k doc) Svm.Json.to_int)
    in
    let js doc k =
      Option.value ~default:"?" (Option.bind (j k doc) Svm.Json.to_str)
    in
    let jb doc k =
      match j k doc with Some (Svm.Json.Bool b) -> b | _ -> false
    in
    let render doc =
      let b = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
      let health = Option.value ~default:Svm.Json.Null (j "health" doc) in
      pf "asmsim top — %s — uptime %ds%s\n" connect (ji health "uptime_s")
        (if jb health "draining" then " — DRAINING" else "");
      pf "peers: %d (%d worker(s), %d client(s), %d pending)\n"
        (ji health "peers") (ji health "workers") (ji health "clients")
        (ji health "pending");
      pf "queue: depth %d, %d in flight, %d active job(s)\n"
        (ji health "queue_depth") (ji health "in_flight")
        (ji health "jobs_active");
      let jobs =
        Option.value ~default:[]
          (Option.bind (j "jobs" health) Svm.Json.to_list)
      in
      if jobs <> [] then begin
        pf "jobs:\n";
        List.iter
          (fun jd ->
            pf "  %-24s %-20s %4d/%-4d shard(s) done, %d running, %d \
                retry(ies), %d watcher(s)\n"
              (js jd "jid") (js jd "scenario") (ji jd "done") (ji jd "shards")
              (ji jd "running") (ji jd "retries") (ji jd "watchers"))
          jobs
      end;
      let peers =
        Option.value ~default:[]
          (Option.bind (j "peer_detail" health) Svm.Json.to_list)
      in
      if peers <> [] then begin
        pf "peers:\n";
        List.iter
          (fun pd ->
            pf "  %-24s %-7s %-5s %8d B in, %5d frames in, %5d out\n"
              (js pd "name") (js pd "role")
              (if
                 match j "busy" pd with
                 | Some (Svm.Json.Bool true) -> true
                 | _ -> false
               then "busy"
               else "idle")
              (ji pd "bytes_in") (ji pd "frames_in") (ji pd "frames_out"))
          peers
      end;
      (* The hottest scenarios and the retry ladder come from the merged
         fleet registry (server counters + every worker push). *)
      (match Option.bind (j "metrics" doc) (j "counters") with
      | Some (Svm.Json.Obj counters) ->
          let prefix = "net_shards_by_scenario." in
          let hot =
            List.filter_map
              (fun (k, v) ->
                if String.starts_with ~prefix k then
                  Option.map
                    (fun n ->
                      ( String.sub k (String.length prefix)
                          (String.length k - String.length prefix),
                        n ))
                    (Svm.Json.to_int v)
                else None)
              counters
            |> List.sort (fun (_, a) (_, b) -> compare b a)
          in
          if hot <> [] then begin
            pf "hot scenarios:\n";
            List.iteri
              (fun i (name, n) ->
                if i < 5 then pf "  %-28s %6d shard(s)\n" name n)
              hot
          end;
          let c k =
            match List.assoc_opt k counters with
            | Some (Svm.Json.Int n) -> n
            | _ -> 0
          in
          pf "fleet: %d shard(s) executed, %d cell(s), %d push(es), %d \
              cache hit(s), %d retry frame(s)\n"
            (c "net_shards_executed_total")
            (c "worker_cells_total")
            (c "net_metrics_pushes_total")
            (c "net_cache_hits_total")
            (c "net_shard_retries_total")
      | _ -> ());
      Buffer.contents b
    in
    let query () =
      match Dist.Client.stats_query cfg addr with
      | Ok doc -> doc
      | Error m ->
          Format.eprintf "top: %s@." m;
          exit 3
    in
    if json then print_string (Svm.Json.to_string (query ()) ^ "\n")
    else if once then print_string (render (query ()))
    else
      let rec loop () =
        let doc = query () in
        (* ANSI clear + home, like every other top. *)
        print_string "\027[2J\027[H";
        print_string (render doc);
        flush stdout;
        Unix.sleepf interval;
        loop ()
      in
      loop ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live status of a running verification service: peers, queue \
          depth, per-job shard progress, hottest scenarios and fleet \
          totals, derived from the server's stats reply (health + merged \
          worker registries). --once prints a single snapshot for \
          scripts; --json emits the raw document.")
    Term.(
      const run $ connect $ once $ json $ interval $ log_level_arg
      $ log_json_arg)

(* ---- soak ---- *)

let soak_cmd =
  let n =
    Arg.(
      value & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Override the scenario's process count.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Base seed: schedule k is derived from (S, k) alone, so any \
             finding is re-derivable long after the run.")
  in
  let schedules =
    Arg.(
      value & opt (some int) None
      & info [ "schedules" ] ~docv:"K"
          ~doc:"Stop after K schedules (this invocation).")
  in
  let until =
    Arg.(
      value & opt (some int) None
      & info [ "until" ] ~docv:"INDEX"
          ~doc:
            "Stop at absolute schedule INDEX — with --resume, a run killed \
             partway and resumed to the same INDEX yields a corpus \
             content-identical to an uninterrupted one.")
  in
  let duration =
    Arg.(
      value & opt (some float) None
      & info [ "duration" ] ~docv:"SEC" ~doc:"Stop after SEC wall seconds.")
  in
  let batch =
    Arg.(
      value & opt int 256
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Schedules per batch; the corpus cements and checkpoints once \
             per batch, so a crash loses at most one batch of work.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Fan each batch out over J domains (capped at the core count); \
             results are index-deterministic at any job count.")
  in
  let tiers =
    Arg.(
      value & opt string "crash"
      & info [ "tiers" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated fault tiers to sample: any of crash, omission, \
             recovery, byzantine.")
  in
  let max_faults =
    Arg.(
      value & opt int 2
      & info [ "max-faults" ] ~docv:"T"
          ~doc:"Faults per schedule are drawn from 0..T.")
  in
  let within =
    Arg.(
      value & opt int 30
      & info [ "within" ] ~docv:"W"
          ~doc:"Local-step window fault points are drawn from.")
  in
  let budget =
    Arg.(
      value & opt int 20_000
      & info [ "budget" ] ~docv:"B" ~doc:"Per-schedule step budget.")
  in
  let corpus_dir =
    Arg.(
      value & opt string ".asmsim-corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Corpus directory findings and checkpoints are cemented into \
             (created if needed).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the corpus's last checkpoint for this scenario \
             and seed instead of starting at schedule 0; known findings are \
             deduplicated, not re-reported.")
  in
  let chaos_store =
    Arg.(
      value & opt (some string) None
      & info [ "chaos-store" ] ~docv:"MODE"
          ~doc:
            "Fault-injection hook for the corpus itself: kill (SIGKILL after \
             an append), torn (flush half a record, then SIGKILL), or \
             bitflip (corrupt one cemented byte). The store must lose at \
             most the uncemented tail, and must quarantine — never trust — \
             corrupt records.")
  in
  let chaos_at =
    Arg.(
      value & opt int 3
      & info [ "chaos-at" ] ~docv:"A"
          ~doc:"Which corpus append the kill/torn chaos strikes.")
  in
  let no_gc_tune =
    Arg.(
      value & flag
      & info [ "no-gc-tune" ]
          ~doc:"Do not widen the minor heap for the hot loop.")
  in
  let max_heap_growth =
    Arg.(
      value & opt (some int) None
      & info [ "max-heap-growth" ] ~docv:"WORDS"
          ~doc:
            "Fail (exit 1) if the major heap grows by more than WORDS words \
             after the first batch — the unbounded-memory gate for long \
             soaks.")
  in
  let run name scenario_file scenario_dir nprocs seed schedules until duration
      batch jobs tiers max_faults within budget corpus_dir resume chaos_store
      chaos_at no_gc_tune max_heap_growth log_level log_json =
    let name = resolve_scenario ~cmd:"soak" name scenario_file scenario_dir in
    let log = make_log ~json:log_json log_level in
    let kinds =
      String.split_on_char ',' tiers
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match Svm.Adversary.fault_kind_of_name s with
             | Some k -> k
             | None ->
                 Format.eprintf
                   "unknown fault tier %S (known: crash, omission, recovery, \
                    byzantine)@."
                   s;
                 exit 2)
    in
    let chaos =
      match chaos_store with
      | None -> None
      | Some m -> (
          match Experiments.Soak.chaos_of_name m with
          | Some c -> Some c
          | None ->
              Format.eprintf
                "unknown --chaos-store mode %S (known: kill, torn, bitflip)@."
                m;
              exit 2)
    in
    match Experiments.Scenario.find ?nprocs name with
    | Error m ->
        prerr_endline m;
        exit 2
    | Ok s -> (
        let soak_log = Svm.Log.sub log "soak" in
        let cfg =
          {
            Experiments.Soak.default_config with
            Experiments.Soak.seed;
            schedules;
            until;
            duration;
            batch;
            jobs;
            kinds;
            max_faults;
            within;
            budget;
            resume;
            chaos;
            chaos_at;
            gc_tune = not no_gc_tune;
            log = soak_log;
          }
        in
        Format.printf
          "soaking %s (n=%d, x=%d): seed %d, up to %d fault(s) of {%s} \
           within %d step(s), batch %d@."
          s.Experiments.Scenario.name s.Experiments.Scenario.nprocs
          s.Experiments.Scenario.x seed max_faults
          (String.concat ","
             (List.map Svm.Adversary.fault_kind_name kinds))
          within batch;
        match Experiments.Soak.run cfg ~corpus_dir s with
        | Error m ->
            Format.eprintf "soak failed: %s@." m;
            exit 3
        | Ok o ->
            Format.printf
              "soaked schedules [%d, %d): %d run(s) in %d batch(es), %d \
               clean, %d deadlocked@."
              o.Experiments.Soak.o_first_index o.Experiments.Soak.o_next_index
              o.Experiments.Soak.o_executed o.Experiments.Soak.o_batches
              o.Experiments.Soak.o_clean o.Experiments.Soak.o_deadlocks;
            List.iter
              (fun d -> Format.printf "new finding %s@." d)
              o.Experiments.Soak.o_new_findings;
            Format.printf
              "findings: %d new, %d duplicate; corpus holds %d record(s)@."
              (List.length o.Experiments.Soak.o_new_findings)
              o.Experiments.Soak.o_dup_findings
              o.Experiments.Soak.o_corpus_records;
            (match o.Experiments.Soak.o_stop with
            | `Schedules -> ()
            | `Duration -> Svm.Log.infof soak_log "duration reached"
            | `Sigterm ->
                Svm.Log.infof soak_log
                  "SIGTERM: drained, cemented and checkpointed; --resume \
                   continues at schedule %d"
                  o.Experiments.Soak.o_next_index);
            (* The unbounded-memory gate: batch-independent work must not
               accumulate across batches. *)
            (match max_heap_growth with
            | Some cap
              when o.Experiments.Soak.o_heap_growth_words > cap ->
                Format.printf
                  "heap growth after first batch: %d words (cap %d) — FAIL@."
                  o.Experiments.Soak.o_heap_growth_words cap;
                exit 1
            | Some cap ->
                Format.printf
                  "heap growth after first batch: %d words (cap %d)@."
                  o.Experiments.Soak.o_heap_growth_words cap
            | None -> ());
            exit 0)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Continuously soak a scenario with seeded random schedules and \
          fault plans, cementing shrunk findings into a crash-safe \
          content-addressed corpus; SIGTERM drains cleanly and --resume \
          picks up at the next unexecuted schedule")
    Term.(
      const run $ scenario_arg $ scenario_file_arg $ scenario_dir_arg $ n
      $ seed $ schedules $ until $ duration $ batch $ jobs $ tiers
      $ max_faults $ within $ budget $ corpus_dir $ resume $ chaos_store
      $ chaos_at $ no_gc_tune $ max_heap_growth $ log_level_arg $ log_json_arg)

(* ---- corpus ---- *)

let corpus_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"The corpus directory.")
  in
  let list =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:
            "Print one `<digest> <kind>' line per valid record, sorted by \
             digest — stable under resume/batch reordering, so two corpora \
             with the same content diff clean.")
  in
  let kind =
    Arg.(
      value & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Restrict --list to finding, metrics or state records.")
  in
  let cat =
    Arg.(
      value
      & opt (some string) None
      & info [ "cat" ] ~docv:"DIGEST"
          ~doc:
            "Write the payload of the record at this content address to \
             stdout — a finding's payload is a replay artifact, directly \
             consumable by `asmsim replay'.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-verify every record's content address; print a typed report \
             per quarantined record and exit 1 if there are any.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "Cement the tail and merge all segments into one, \
             byte-identity-checked against the input before the old \
             segments are dropped. Refuses while any record is quarantined.")
  in
  let run dir list kind cat check compact =
    let kind_filter =
      match kind with
      | None -> None
      | Some k -> (
          match Corpus.Record.kind_of_name k with
          | Some _ as f -> f
          | None ->
              Format.eprintf
                "unknown record kind %S (known: finding, metrics, state)@." k;
              exit 2)
    in
    match Corpus.Store.open_ dir with
    | Error m ->
        Format.eprintf "corpus: %s@." m;
        exit 2
    | Ok store ->
        Fun.protect
          ~finally:(fun () -> Corpus.Store.close store)
          (fun () ->
            if compact then (
              match Corpus.Store.compact store with
              | Ok n ->
                  Format.eprintf "[corpus] compacted %d record(s) into one \
                                  segment@." n
              | Error m ->
                  Format.eprintf "corpus: compaction refused: %s@." m;
                  exit 1);
            (match cat with
            | None -> ()
            | Some d -> (
                match Corpus.Store.find store d with
                | Some r -> print_string r.Corpus.Record.payload
                | None ->
                    Format.eprintf
                      "corpus: no valid record at %s (absent, or quarantined \
                       by this read)@."
                      d;
                    exit 1));
            if list then begin
              let rows =
                Corpus.Store.fold store ~init:[] ~f:(fun acc ~digest r ->
                    match kind_filter with
                    | Some k when r.Corpus.Record.kind <> k -> acc
                    | _ ->
                        (digest, Corpus.Record.kind_name r.Corpus.Record.kind)
                        :: acc)
              in
              List.sort compare rows
              |> List.iter (fun (d, k) -> Format.printf "%s %s@." d k)
            end;
            (* Opening (and any listing) already re-verified everything;
               the quarantine list is the verdict. *)
            let quarantined = Corpus.Store.quarantined store in
            if check then begin
              List.iter
                (fun q ->
                  Format.printf "quarantined: %a@." Corpus.Store.pp_quarantine
                    q)
                quarantined;
              Format.printf "%d record(s) valid, %d quarantined@."
                (Corpus.Store.count store)
                (List.length quarantined)
            end
            else if (not list) && cat = None then
              Format.printf
                "%d record(s): %d cemented segment(s), %d in the tail, %d \
                 quarantined@."
                (Corpus.Store.count store)
                (Corpus.Store.segments store)
                (Corpus.Store.tail_count store)
                (List.length quarantined);
            if quarantined <> [] && check then exit 1)
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Inspect a soak corpus: list content addresses, re-verify every \
          record (--check), or compact the cemented segments")
    Term.(const run $ dir $ list $ kind $ cat $ check $ compact)

let () =
  let doc = "Reproduction of 'The Multiplicative Power of Consensus Numbers'" in
  let group =
    Cmd.group (Cmd.info "asmsim" ~doc)
      [
        classes_cmd;
        canonical_cmd;
        run_task_cmd;
        simulate_cmd;
        chain_cmd;
        overhead_cmd;
        experiment_cmd;
        sweep_cmd;
        explore_cmd;
        replay_cmd;
        trace_cmd;
        trace_check_cmd;
        trace_merge_cmd;
        stats_cmd;
        scenarios_cmd;
        sdl_cmd;
        serve_cmd;
        work_cmd;
        top_cmd;
        soak_cmd;
        corpus_cmd;
      ]
  in
  (* One exit-code convention for every subcommand: 0 clean, 1 finding
     (the bodies call [exit 1] themselves), 2 usage/parse errors — both
     cmdliner's own and the bodies' [exit 2] — and 3 for anything that
     escapes as an exception. *)
  match Cmd.eval_value ~catch:false group with
  | Ok _ -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 3
  | exception e ->
      Format.eprintf "asmsim: internal error: %s@." (Printexc.to_string e);
      exit 3
